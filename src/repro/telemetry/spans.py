"""Causal span model: hierarchical, request-linked timing spans.

Where :class:`~repro.sim.tracing.Trace` keeps a *flat* list of
intervals, the telemetry layer records **spans** — timed regions with a
parent span, a request id, and an attribute bag — so a run can be
reconstructed as one tree per request (request → chain stage →
dma/drx/kernel/notify leaves) and rendered as a waterfall or exported to
Perfetto.

Span times come from the owning :class:`~repro.sim.engine.Simulator`
clock, so two runs with equal seeds produce identical span streams —
the property the artifact determinism tests pin down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

__all__ = ["Span", "Instant", "ActiveSpan", "SpanTracker", "ROOT_PARENT"]

#: Parent id of a root span (no parent).
ROOT_PARENT = -1


class Span:
    """One span of simulated time (open until ``end`` is set).

    ``phase`` ties the span to the system model's phase accounting
    (kernel / restructuring / movement / control / recovery / queue);
    spans that only add causal detail under a phase span (e.g. the DMA
    legs inside a movement span) leave it empty so phase totals computed
    from spans never double-count. ``attrs['abandoned']`` marks spans
    from a timed-out DRX attempt whose time was re-billed to the
    recovery phase.

    A span begun via :meth:`SpanTracker.begin` has ``end is None`` until
    :meth:`SpanTracker.end` closes it *in place* — one object per span,
    recording stays allocation-light on the DES hot path.
    ``request_id`` may be assigned after creation (the serving frontend
    learns a request's id only once the system returns its record).
    """

    __slots__ = (
        "span_id", "parent_id", "request_id", "name", "category",
        "actor", "phase", "start", "end", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        request_id: int,
        name: str,
        category: str,
        actor: str,
        phase: str,
        start: float,
        end: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.request_id = request_id
        self.name = name
        self.category = category
        self.actor = actor
        self.phase = phase
        self.start = start
        self.end = end
        self.attrs = {} if attrs is None else attrs

    def __repr__(self) -> str:
        return (
            f"Span(#{self.span_id}<-{self.parent_id} req={self.request_id} "
            f"{self.name!r} cat={self.category} phase={self.phase!r} "
            f"{self.start}..{self.end})"
        )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def abandoned(self) -> bool:
        return bool(self.attrs.get("abandoned"))


#: A begun-but-unfinished span is the same object its tracker will
#: finish in place; the alias keeps begin/end signatures self-documenting.
ActiveSpan = Span


@dataclass(slots=True)
class Instant:
    """A point event (fault injections, retries, fallbacks, giveups)."""

    time: float
    name: str
    category: str
    actor: str = ""
    request_id: int = -1
    attrs: Dict[str, object] = field(default_factory=dict)


class SpanTracker:
    """Owns the span stream of one simulated run.

    Finished spans land in :attr:`spans` in completion order (children
    before parents — the DES makes this order deterministic); open spans
    are tracked so recovery paths can abandon a subtree and run drivers
    can truncate stragglers at the end of a run.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._ids = itertools.count()
        self._open: Dict[int, Span] = {}
        # parent id -> child span ids, for subtree walks (abandonment).
        self._children: Dict[int, List[int]] = {}
        self._by_id: Dict[int, Span] = {}

    # -- recording -----------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        actor: str = "",
        parent: Union[int, ActiveSpan, Span, None] = None,
        request_id: int = -1,
        phase: str = "",
        start: Optional[float] = None,
        **attrs: object,
    ) -> ActiveSpan:
        """Open a span at the current sim time (or explicit ``start``)."""
        # Hot path (one call per modeled operation): ``attrs`` is already
        # a fresh dict from ``**``, so it is adopted, not copied.
        if parent is None:
            parent_id = ROOT_PARENT
        elif type(parent) is int:
            parent_id = parent
        else:
            parent_id = parent.span_id
        sid = next(self._ids)
        span = Span(
            sid, parent_id, request_id, name, category,
            actor, phase, self.sim.now if start is None else start,
            None, attrs,
        )
        self._open[sid] = span
        self._by_id[sid] = span
        if parent_id != ROOT_PARENT:
            kids = self._children.get(parent_id)
            if kids is None:
                self._children[parent_id] = [sid]
            else:
                kids.append(sid)
        return span

    def end(self, span: ActiveSpan, **attrs: object) -> Span:
        """Close an open span, in place, at the current sim time."""
        if self._open.pop(span.span_id, None) is None:
            raise ValueError(f"span {span.span_id} is not open")
        now = self.sim.now
        if now < span.start:
            raise ValueError(
                f"span {span.name!r} ends before it starts: "
                f"{span.start}..{now}"
            )
        if attrs:
            span.attrs.update(attrs)
        span.end = now
        self.spans.append(span)
        return span

    def add(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        actor: str = "",
        parent: Union[int, ActiveSpan, Span, None] = None,
        request_id: int = -1,
        phase: str = "",
        **attrs: object,
    ) -> Span:
        """Record a span with explicit times (post-hoc recording)."""
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        parent_id = _parent_id(parent)
        span = Span(
            next(self._ids), parent_id, request_id, name, category,
            actor, phase, start, end, attrs,
        )
        if parent_id != ROOT_PARENT:
            self._children.setdefault(parent_id, []).append(span.span_id)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def instant(
        self,
        name: str,
        category: str,
        actor: str = "",
        request_id: int = -1,
        time: Optional[float] = None,
        **attrs: object,
    ) -> Instant:
        """Record a point event at the current sim time (or ``time``)."""
        event = Instant(
            self.sim.now if time is None else time,
            name, category, actor, request_id, attrs,
        )
        self.instants.append(event)
        return event

    # -- recovery / end-of-run bookkeeping -----------------------------------

    def mark_abandoned(self, root: Union[int, ActiveSpan, Span]) -> int:
        """Mark a span and its whole subtree ``abandoned`` (open
        descendants are closed at the current time first). Returns the
        number of spans marked."""
        root_id = root if isinstance(root, int) else root.span_id
        marked = 0
        stack = [root_id]
        while stack:
            span_id = stack.pop()
            span = self._by_id.get(span_id)
            if span is None:
                continue
            if span_id in self._open:
                self.end(span)
            span.attrs["abandoned"] = True
            marked += 1
            stack.extend(self._children.get(span_id, ()))
        return marked

    @property
    def open_count(self) -> int:
        return len(self._open)

    def finalize(self) -> int:
        """Close any still-open spans (marked ``truncated``) at the
        current sim time; run drivers call this after the DES drains.
        Returns the number of spans truncated."""
        stragglers = list(self._open.values())
        for span in stragglers:
            self.end(span, truncated=True)
        return len(stragglers)


def _parent_id(parent: Union[int, ActiveSpan, Span, None]) -> int:
    if parent is None:
        return ROOT_PARENT
    if isinstance(parent, int):
        return parent
    return parent.span_id
