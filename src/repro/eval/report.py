"""Plain-text report formatting for experiment results.

Every experiment driver returns rows of (label, value...) data; this
module renders them the way the paper's tables/figure captions read, so
``python -m repro.eval`` output can be compared against the paper
side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_ratio", "Banner"]


def format_ratio(value: float) -> str:
    """Render a speedup/improvement factor the way the paper does."""
    return f"{value:.2f}x"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a separator under the header."""
    rendered_rows: List[List[str]] = [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


class Banner:
    """Section banner used by the experiment CLI."""

    def __init__(self, text: str):
        self.text = text

    def __str__(self) -> str:
        rule = "=" * max(60, len(self.text) + 4)
        return f"{rule}\n  {self.text}\n{rule}"
