"""Resumable sharded sweep orchestration over an on-disk experiment store.

The serving sweeps (:func:`repro.serve.run_sweep`) and chaos sweeps
(:func:`repro.resilience.run_chaos_sweep`) are embarrassingly parallel —
every grid point builds its own fresh system and replays independently —
but the in-process drivers run them serially and lose everything on a
crash. This module splits a sweep into its grid points, persists them as
rows in a SQLite **experiment store**, and executes them with a pool of
worker *processes* that claim rows atomically (fill-then-execute, the
py_experimenter discipline):

1. **fill** — expand the config into grid-point rows keyed by a content
   hash of (config, point coordinates). Filling is idempotent: existing
   rows (including finished ones) are left untouched, so re-filling
   after a config edit schedules exactly the points whose hash changed.
2. **execute** — each worker claims one ``pending`` row at a time
   (an ``UPDATE ... WHERE status='pending'`` inside an immediate
   transaction, so two workers can never claim the same point), runs it
   via :func:`repro.serve.sweep.run_sweep_point` /
   :func:`repro.resilience.chaos.run_chaos_cell`, and writes the result
   JSON back. A worker that dies mid-point leaves the row ``running``;
   the next invocation reclaims it (no live workers → every ``running``
   row is stale), so a killed run resumes where it stopped instead of
   starting over.
3. **collect** — reassemble the full :class:`~repro.serve.SweepResult`
   / :class:`~repro.resilience.ChaosSweepResult` from the store in
   canonical grid order. Because each point replays deterministically,
   a crashed-and-resumed grid collects to byte-identical
   ``to_json()`` output as an uninterrupted in-process sweep.

Configs are serialized structurally (dataclasses, enums, tuples) — a
``chain_factory`` closure cannot cross a process boundary or a content
hash, so orchestrated sweeps must use the named-benchmark path.

CLI::

    python -m repro.eval.orchestrator fill    --db exp.db --spec spec.json
    python -m repro.eval.orchestrator run     --db exp.db --spec spec.json \\
        --workers 4
    python -m repro.eval.orchestrator status  --db exp.db
    python -m repro.eval.orchestrator collect --db exp.db --spec spec.json

where ``spec.json`` holds :func:`encode_experiment` output (``kind`` +
encoded config).
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import hashlib
import json
import multiprocessing
import os
import sqlite3
import sys
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "OrchestratorError",
    "IncompleteGridError",
    "encode_experiment",
    "decode_experiment",
    "grid_points",
    "point_key",
    "ExperimentStore",
    "fill_store",
    "run_workers",
    "run_grid",
    "collect",
    "main",
]


class OrchestratorError(Exception):
    """A sweep config or store operation the orchestrator cannot handle."""


class IncompleteGridError(OrchestratorError):
    """Collect was asked for a grid whose points are not all done."""


# -- config codec --------------------------------------------------------
#
# Structural encoding with an explicit class registry: dataclasses become
# {"__dc__": name, ...fields}, enums {"__enum__": name, "value": ...},
# tuples {"__tuple__": [...]}. The registry is the closed set of config
# types a sweep can reference; anything else (closures in particular) is
# rejected so a spec is always hashable and process-portable.


def _registry() -> Dict[str, type]:
    from ..backends.dsa import DSAConfig
    from ..backends.planner import PlannerConfig
    from ..backends.xdma import XDMAConfig
    from ..core.placement import Mode
    from ..faults.injector import FaultPolicy
    from ..faults.plan import FaultPlan
    from ..faults.recovery import RetryPolicy
    from ..resilience.brownout import BrownoutConfig, BrownoutTier
    from ..resilience.chaos import ChaosSweepConfig
    from ..resilience.control import ResilienceConfig
    from ..resilience.health import HealthConfig
    from ..resilience.breaker import BreakerConfig
    from ..serve.batching import BatchingConfig
    from ..serve.frontend import Discipline, ShedPolicy
    from ..serve.sweep import SweepConfig

    return {
        cls.__name__: cls
        for cls in (
            Mode, ShedPolicy, Discipline, BrownoutTier,
            SweepConfig, ChaosSweepConfig,
            FaultPlan, FaultPolicy, RetryPolicy,
            ResilienceConfig, HealthConfig, BreakerConfig,
            BrownoutConfig, BatchingConfig,
            PlannerConfig, DSAConfig, XDMAConfig,
        )
    }


def _encode_value(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _registry():
            raise OrchestratorError(
                f"cannot serialize dataclass {name!r}: not a known "
                f"sweep-config type"
            )
        return {
            "__dc__": name,
            "fields": {
                f.name: _encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {key: _encode_value(v) for key, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if callable(value):
        raise OrchestratorError(
            "cannot serialize a callable (chain_factory closures cannot "
            "cross a process boundary — use the named-benchmark path)"
        )
    raise OrchestratorError(f"cannot serialize {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__dc__" in value:
            cls = _registry()[value["__dc__"]]
            fields = {
                key: _decode_value(v)
                for key, v in value["fields"].items()
            }
            return cls(**fields)
        if "__enum__" in value:
            return _registry()[value["__enum__"]](value["value"])
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        return {key: _decode_value(v) for key, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_experiment(config: Any) -> Dict[str, Any]:
    """A sweep config as a JSON-safe document (``kind`` + fields)."""
    from ..resilience.chaos import ChaosSweepConfig
    from ..serve.sweep import SweepConfig

    if isinstance(config, SweepConfig):
        kind = "sweep"
    elif isinstance(config, ChaosSweepConfig):
        kind = "chaos"
    else:
        raise OrchestratorError(
            f"unsupported experiment config: {type(config).__name__}"
        )
    return {"kind": kind, "config": _encode_value(config)}


def decode_experiment(doc: Dict[str, Any]) -> Tuple[str, Any]:
    """Invert :func:`encode_experiment` → ``(kind, config)``."""
    kind = doc.get("kind")
    if kind not in ("sweep", "chaos"):
        raise OrchestratorError(f"unknown experiment kind: {kind!r}")
    return kind, _decode_value(doc["config"])


#: Config fields that only define the grid's *shape*. They are excluded
#: from a point's identity hash — a point is keyed by its own coordinate
#: values, so growing or reordering an axis re-runs only the points that
#: did not exist before.
_GRID_AXES = {
    "sweep": ("modes", "offered_loads_rps"),
    "chaos": ("fault_intensities", "control_plane", "offered_loads_rps"),
}


def _tuple_field(encoded_config: Dict[str, Any], name: str) -> List[Any]:
    return encoded_config["fields"][name]["__tuple__"]


def _point_identity(spec: Dict[str, Any]) -> Dict[str, Any]:
    """The hash-relevant view of one grid point: every config field that
    shapes its result, plus its own coordinates *by value* (not by grid
    index — index shifts when an axis grows, values do not)."""
    kind = spec["kind"]
    config = spec["config"]
    fields = {
        name: value
        for name, value in config["fields"].items()
        if name not in _GRID_AXES[kind]
    }
    if kind == "sweep":
        coords: Dict[str, Any] = {
            "mode": spec["mode"],
            "load": _tuple_field(config, "offered_loads_rps")[
                spec["point_index"]
            ],
        }
    else:
        coords = {
            "intensity": _tuple_field(config, "fault_intensities")[
                spec["intensity_index"]
            ],
            "resilient": spec["resilient"],
            "load": _tuple_field(config, "offered_loads_rps")[
                spec["load_index"]
            ],
        }
    return {"kind": kind, "fields": fields, "coords": coords}


def point_key(spec: Dict[str, Any]) -> str:
    """Content hash of one grid point's identity — the store's key.

    Any change to a result-shaping config field or to the point's own
    coordinates changes the key; changes to the *other* grid points do
    not. Re-filling after an edit therefore schedules exactly the
    changed points and reuses every finished unchanged one.
    """
    canonical = json.dumps(
        _point_identity(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def grid_points(config: Any) -> List[Dict[str, Any]]:
    """Expand a sweep config into per-point specs, in canonical grid
    order (the order the in-process drivers run them)."""
    doc = encode_experiment(config)
    kind, encoded = doc["kind"], doc["config"]
    points: List[Dict[str, Any]] = []
    if kind == "sweep":
        for mode in config.modes:
            for point_index in range(len(config.offered_loads_rps)):
                points.append({
                    "kind": kind,
                    "config": encoded,
                    "mode": mode.value,
                    "point_index": point_index,
                })
    else:
        for intensity_index in range(len(config.fault_intensities)):
            for resilient in config.control_plane:
                for load_index in range(len(config.offered_loads_rps)):
                    points.append({
                        "kind": kind,
                        "config": encoded,
                        "intensity_index": intensity_index,
                        "resilient": bool(resilient),
                        "load_index": load_index,
                    })
    return points


def run_point(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one grid point's spec; returns the point as a JSON-safe
    dict. Shared by every worker and by in-process (serial) execution."""
    kind, config = decode_experiment(spec)
    if kind == "sweep":
        from ..core.placement import Mode
        from ..serve.sweep import run_sweep_point

        point = run_sweep_point(
            config, Mode(spec["mode"]), spec["point_index"]
        )
    else:
        from ..resilience.chaos import run_chaos_cell

        point = run_chaos_cell(
            config,
            spec["intensity_index"],
            spec["resilient"],
            spec["load_index"],
        )
    return dataclasses.asdict(point)


# -- the experiment store ------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    point_key   TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    worker      TEXT NOT NULL DEFAULT '',
    attempts    INTEGER NOT NULL DEFAULT 0,
    result_json TEXT,
    error       TEXT,
    updated_at  REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS experiments_status ON experiments (status);
"""

STATUSES = ("pending", "running", "done", "error")


class ExperimentStore:
    """SQLite-backed grid-point rows with atomic claiming.

    One store may hold points from many grids (keys are content hashes,
    so grids never collide); collect addresses rows by the keys of the
    grid it is reassembling.
    """

    def __init__(self, path: str):
        self.path = path
        self._conn = sqlite3.connect(path, timeout=30.0)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def fill(self, specs: List[Dict[str, Any]]) -> int:
        """Insert pending rows for new specs; existing keys (whatever
        their status) are untouched. Returns how many were inserted."""
        inserted = 0
        with self._conn:
            for spec in specs:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO experiments "
                    "(point_key, kind, spec_json, status, updated_at) "
                    "VALUES (?, ?, ?, 'pending', ?)",
                    (
                        point_key(spec),
                        spec["kind"],
                        json.dumps(spec, sort_keys=True),
                        time.time(),
                    ),
                )
                inserted += cursor.rowcount
        return inserted

    def claim(self, worker: str) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Atomically claim the oldest pending row for ``worker``.

        Returns ``(point_key, spec)`` or None when nothing is pending.
        The immediate transaction takes the write lock up front, so
        concurrent claimers serialize and each row is handed out once.
        """
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            row = self._conn.execute(
                "SELECT point_key, spec_json FROM experiments "
                "WHERE status='pending' ORDER BY rowid LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            key, spec_json = row
            self._conn.execute(
                "UPDATE experiments SET status='running', worker=?, "
                "attempts=attempts+1, updated_at=? WHERE point_key=?",
                (worker, time.time(), key),
            )
        return key, json.loads(spec_json)

    def complete(self, key: str, result: Dict[str, Any]) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE experiments SET status='done', result_json=?, "
                "error=NULL, updated_at=? WHERE point_key=?",
                (json.dumps(result, sort_keys=True), time.time(), key),
            )

    def fail(self, key: str, error: str) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE experiments SET status='error', error=?, "
                "updated_at=? WHERE point_key=?",
                (error, time.time(), key),
            )

    def reclaim_stale(self) -> int:
        """Re-queue every ``running`` row (crashed worker) and every
        ``error`` row (to retry after a fix). Call only when no workers
        are live — at that moment any claim is by definition orphaned."""
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE experiments SET status='pending', worker='', "
                "updated_at=? WHERE status IN ('running', 'error')",
                (time.time(),),
            )
        return cursor.rowcount

    def counts(self) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT status, COUNT(*) FROM experiments GROUP BY status"
        ).fetchall()
        counts = {status: 0 for status in STATUSES}
        counts.update(dict(rows))
        return counts

    def results_for(
        self, keys: List[str]
    ) -> Dict[str, Optional[Dict[str, Any]]]:
        """status+result for each requested key (missing keys omitted)."""
        out: Dict[str, Optional[Dict[str, Any]]] = {}
        for key in keys:
            row = self._conn.execute(
                "SELECT status, result_json FROM experiments "
                "WHERE point_key=?",
                (key,),
            ).fetchone()
            if row is None:
                continue
            status, result_json = row
            out[key] = (
                json.loads(result_json)
                if status == "done" and result_json is not None
                else None
            )
        return out


# -- execution -----------------------------------------------------------


def _worker_main(
    db_path: str, worker: str, max_points: Optional[int] = None
) -> None:
    """Claim-and-run loop of one worker process.

    Exits when no pending work remains or after ``max_points`` points
    (the hook crash/partial-run tests use to stop a worker mid-grid).
    A failing point is recorded as ``error`` and the loop moves on; it
    never takes the worker down.
    """
    store = ExperimentStore(db_path)
    done = 0
    try:
        while max_points is None or done < max_points:
            claimed = store.claim(worker)
            if claimed is None:
                break
            key, spec = claimed
            try:
                store.complete(key, run_point(spec))
            except Exception:
                store.fail(key, traceback.format_exc())
            done += 1
    finally:
        store.close()


def fill_store(db_path: str, config: Any) -> int:
    """Expand ``config`` into the store; returns newly inserted rows."""
    with ExperimentStore(db_path) as store:
        return store.fill(grid_points(config))


def run_workers(
    db_path: str,
    n_workers: int = 2,
    max_points: Optional[int] = None,
    reclaim: bool = True,
) -> Dict[str, int]:
    """Drain pending rows with ``n_workers`` processes; returns counts.

    ``reclaim=True`` first re-queues stale ``running``/``error`` rows —
    the crash-resume path. ``n_workers=0`` runs the claim loop in this
    process (no fork), which the CLI exposes as ``--serial``.
    """
    if n_workers < 0:
        raise OrchestratorError("n_workers must be >= 0")
    if reclaim:
        with ExperimentStore(db_path) as store:
            store.reclaim_stale()
    if n_workers == 0:
        _worker_main(db_path, f"serial-{os.getpid()}", max_points)
    else:
        # fork inherits the already-imported model stack (and sys.path),
        # so workers start instantly; spawn is the portability fallback.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        procs = [
            context.Process(
                target=_worker_main,
                args=(db_path, f"worker-{index}", max_points),
            )
            for index in range(n_workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
    with ExperimentStore(db_path) as store:
        return store.counts()


def collect(db_path: str, config: Any) -> Any:
    """Reassemble ``config``'s full sweep result from the store.

    Points are emitted in canonical grid order, so the result's
    ``to_json()`` is byte-identical to the in-process driver's. Raises
    :class:`IncompleteGridError` when any grid point is missing,
    pending, or failed.
    """
    from ..resilience.chaos import ChaosPoint, ChaosSweepResult
    from ..serve.sweep import SweepPoint, SweepResult

    specs = grid_points(config)
    keys = [point_key(spec) for spec in specs]
    with ExperimentStore(db_path) as store:
        results = store.results_for(keys)
    missing = [key for key in keys if results.get(key) is None]
    if missing:
        raise IncompleteGridError(
            f"{len(missing)} of {len(keys)} grid points not done "
            f"(first: {missing[0][:12]}…) — run the workers, or check "
            f"'status' for error rows"
        )
    kind = specs[0]["kind"]
    if kind == "sweep":
        return SweepResult(
            slo_s=config.slo_s,
            seed=config.seed,
            points=[SweepPoint(**results[key]) for key in keys],
        )
    return ChaosSweepResult(
        slo_s=config.slo_s,
        seed=config.seed,
        goodput_floor=config.goodput_floor,
        points=[ChaosPoint(**results[key]) for key in keys],
    )


def run_grid(db_path: str, config: Any, n_workers: int = 2) -> Any:
    """fill → execute → collect in one call (the common local path)."""
    fill_store(db_path, config)
    counts = run_workers(db_path, n_workers=n_workers)
    if counts["error"]:
        raise OrchestratorError(
            f"{counts['error']} grid points failed — see 'status --errors'"
        )
    return collect(db_path, config)


# -- CLI -----------------------------------------------------------------


def _load_spec(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    _, config = decode_experiment(doc)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.orchestrator",
        description="Resumable sharded sweep execution.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db(p: argparse.ArgumentParser, spec: bool = True) -> None:
        p.add_argument("--db", required=True, help="experiment store path")
        if spec:
            p.add_argument(
                "--spec", required=True,
                help="JSON file holding encode_experiment() output",
            )

    add_db(sub.add_parser("fill", help="insert the grid's pending rows"))
    run_p = sub.add_parser("run", help="fill, reclaim stale rows, execute")
    add_db(run_p)
    run_p.add_argument("--workers", type=int, default=2)
    run_p.add_argument(
        "--max-points", type=int, default=None,
        help="stop each worker after this many points (smoke tests)",
    )
    run_p.add_argument(
        "--serial", action="store_true",
        help="run the claim loop in-process instead of forking workers",
    )
    status_p = sub.add_parser("status", help="row counts by status")
    add_db(status_p, spec=False)
    status_p.add_argument(
        "--errors", action="store_true", help="print failed rows' errors"
    )
    collect_p = sub.add_parser(
        "collect", help="reassemble and print the sweep result JSON"
    )
    add_db(collect_p)
    collect_p.add_argument(
        "--out", default=None, help="write JSON here instead of stdout"
    )

    args = parser.parse_args(argv)
    if args.command == "fill":
        inserted = fill_store(args.db, _load_spec(args.spec))
        print(f"inserted {inserted} pending rows")
        return 0
    if args.command == "run":
        config = _load_spec(args.spec)
        fill_store(args.db, config)
        counts = run_workers(
            args.db,
            n_workers=0 if args.serial else args.workers,
            max_points=args.max_points,
        )
        print(
            " ".join(f"{status}={counts[status]}" for status in STATUSES)
        )
        return 1 if counts["error"] else 0
    if args.command == "status":
        with ExperimentStore(args.db) as store:
            counts = store.counts()
            print(
                " ".join(f"{status}={counts[status]}" for status in STATUSES)
            )
            if args.errors:
                rows = store._conn.execute(
                    "SELECT point_key, error FROM experiments "
                    "WHERE status='error'"
                ).fetchall()
                for key, error in rows:
                    print(f"-- {key[:12]}…\n{error}")
        return 0
    if args.command == "collect":
        result = collect(args.db, _load_spec(args.spec))
        payload = result.to_json()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
        else:
            try:
                print(payload)
            except BrokenPipeError:  # e.g. `collect ... | head`
                os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
