"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation switches off (or sweeps) one mechanism the DMX design
relies on and measures the cost, quantifying *why* the design is the
way it is:

* **scratchpad fusion** — the DRX compiler keeps restructuring-chain
  intermediates on chip; without it, every intermediate round-trips
  DRAM like the CPU's cache hierarchy does;
* **interrupt coalescing / NAPI polling** — the driver's notification
  strategy under bursty completion traffic;
* **scratchpad capacity** — smaller scratchpads force more, smaller
  tiles through the compiler (more hardware-loop iterations and issue
  overhead);
* **DRX scalar residual** — how much of DMX's benefit depends on the
  compiler vectorizing control-flow-bound restructuring;
* **decoupled access-execute** — overlap of the Off-chip Data Access
  Engine with the RE lanes, vs a serialized design.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

import numpy as np

from ..core import DMXSystem, Mode, SystemConfig
from ..drx import (
    DRXCompiler,
    DRXConfig,
    DRXMemory,
    DRXTimingModel,
    FunctionalDRX,
    sound_motion_kernel,
)
from ..restructuring import mel_filterbank
from ..sim import geometric_mean
from ..workloads import benchmark_names, build_benchmark_chains

__all__ = [
    "ablate_scratchpad_fusion",
    "ablate_notification_strategy",
    "ablate_scratchpad_capacity",
    "ablate_scalar_residual",
    "ablate_decoupling",
    "ablate_batch_size",
]


def _geomean_speedup(config: SystemConfig, n_apps: int,
                     requests: int = 3) -> float:
    ratios = []
    for name in benchmark_names():
        chains = build_benchmark_chains(name, n_apps)
        base = DMXSystem(
            chains, SystemConfig(mode=Mode.MULTI_AXL)
        ).run_latency(requests)
        dmx = DMXSystem(chains, replace(config, mode=config.mode)).run_latency(
            requests
        )
        ratios.append(base.mean_latency() / dmx.mean_latency())
    return geometric_mean(ratios)


def ablate_scratchpad_fusion(n_apps: int = 5) -> Dict[str, float]:
    """DMX speedup with and without on-chip fusion of op chains.

    Without fusion, the DRX's DRAM traffic equals the CPU's (every
    intermediate materialized), so memory-bound restructuring loses most
    of its advantage.
    """
    from ..core import system as system_module

    fused = _geomean_speedup(SystemConfig(mode=Mode.BUMP_IN_WIRE), n_apps)
    system_module.SCRATCHPAD_FUSION = False
    try:
        unfused = _geomean_speedup(
            SystemConfig(mode=Mode.BUMP_IN_WIRE), n_apps
        )
    finally:
        system_module.SCRATCHPAD_FUSION = True
    return {"fused": fused, "unfused": unfused}


def ablate_notification_strategy(n_apps: int = 10) -> Dict[str, int]:
    """Interrupt / coalesced / polled counts under load (NAPI behaviour)."""
    chains = build_benchmark_chains("sound-detection", n_apps)
    system = DMXSystem(chains, SystemConfig(mode=Mode.BUMP_IN_WIRE))
    system.run_throughput(10)
    stats = system.notifier.stats
    return {
        "interrupts": stats.interrupts,
        "coalesced": stats.coalesced,
        "polled": stats.polled,
    }


def ablate_scratchpad_capacity(
    sizes: Sequence[int] = (8 * 1024, 16 * 1024, 64 * 1024, 256 * 1024),
) -> Dict[int, Dict[str, float]]:
    """Compiler tiling vs scratchpad size on the sound-motion kernel."""
    n_frames, n_bins, n_mels = 16, 65, 16
    n = n_frames * n_bins
    rng = np.random.default_rng(0)
    out: Dict[int, Dict[str, float]] = {}
    for size in sizes:
        config = DRXConfig(scratchpad_bytes=size)
        program = DRXCompiler(config).compile(
            sound_motion_kernel(n_frames, n_bins, n_mels)
        )
        mem = DRXMemory()
        mem.bind("re", rng.standard_normal(n).astype(np.float32))
        mem.bind("im", rng.standard_normal(n).astype(np.float32))
        mem.bind("bank", mel_filterbank(n_mels, n_bins, 16000.0))
        for name, count in [("re2", n), ("im2", n), ("power", n),
                            ("spectrogram", n), ("mel", n_mels * n_frames),
                            ("out", n_mels * n_frames)]:
            mem.allocate(name, count, np.float32)
        drx = FunctionalDRX(mem, n_banks=config.n_banks,
                            scratchpad_bytes=size)
        stats = drx.execute(program)
        out[size] = {
            "static_instructions": float(len(program)),
            "loop_iterations": float(stats.loop_iterations),
            "latency_s": DRXTimingModel(config).time_from_stats(stats),
        }
    return out


def ablate_scalar_residual(
    residuals: Sequence[float] = (0.0, 0.1, 0.5, 1.0),
    n_apps: int = 5,
) -> Dict[float, float]:
    """DMX speedup vs how much restructuring stays scalar on DRX.

    residual=1.0 means the DRX compiler vectorizes nothing the CPU
    couldn't — the paper's programmable-front-end claim turned off.
    """
    out = {}
    for residual in residuals:
        config = SystemConfig(
            mode=Mode.BUMP_IN_WIRE,
            drx=DRXConfig(scalar_residual=residual),
        )
        out[residual] = _geomean_speedup(config, n_apps)
    return out


def ablate_batch_size(
    factors: Sequence[float] = (0.01, 0.1, 1.0, 4.0),
    benchmark: str = "sound-detection",
    n_apps: int = 5,
) -> Dict[float, float]:
    """DMX speedup vs intermediate batch size.

    DMX pays fixed per-request costs (interrupts, DMA setup, DRX kernel
    launch); for tiny batches those overheads eat the benefit, locating
    the crossover below which chaining accelerators through DRX stops
    paying.
    """
    out = {}
    for factor in factors:
        chains = [
            chain.scale_batches(factor)
            for chain in build_benchmark_chains(benchmark, n_apps)
        ]
        base = DMXSystem(
            chains, SystemConfig(mode=Mode.MULTI_AXL)
        ).run_latency(3)
        dmx = DMXSystem(
            chains, SystemConfig(mode=Mode.BUMP_IN_WIRE)
        ).run_latency(3)
        out[factor] = base.mean_latency() / dmx.mean_latency()
    return out


def ablate_decoupling(n_apps: int = 5) -> Dict[str, float]:
    """Decoupled access-execute (overlap) vs a serialized DRX.

    A serialized DRX pays compute + memory instead of max(compute,
    memory); modeled by halving effective DRAM bandwidth and compute
    rate together (equivalent to summing for balanced kernels).
    """
    decoupled = _geomean_speedup(SystemConfig(mode=Mode.BUMP_IN_WIRE), n_apps)
    serialized_config = SystemConfig(
        mode=Mode.BUMP_IN_WIRE,
        drx=DRXConfig(dram_bandwidth=12.5e9, compute_efficiency=0.45),
    )
    serialized = _geomean_speedup(serialized_config, n_apps)
    return {"decoupled": decoupled, "serialized": serialized}
