"""Experiment drivers: one function per table/figure in the paper.

Each driver builds the systems it needs, runs the DES, and returns a
structured result whose ``rows()`` print the same series the paper
reports. Absolute numbers differ from the paper (the substrate is a
model, not the authors' testbed); the *shape* assertions live in
``benchmarks/``.

Concurrency levels follow the paper: 1, 5, 10, 15 concurrent
applications (each application occupies one accelerator per kernel, so
15 two-kernel applications = 30 accelerators).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    CollectiveSystem,
    DMXSystem,
    Mode,
    SystemConfig,
)
from ..cpu import TopDownModel, XEON_8260L
from ..drx.microarch import DRXConfig
from ..energy import EnergyModel
from ..interconnect import PCIeGen
from ..sim import geometric_mean
from ..workloads import benchmark_names, build_benchmark_chains

__all__ = [
    "CONCURRENCY_LEVELS",
    "run_mode",
    "fig3a_runtime_breakdown",
    "fig3b_motivation_speedup",
    "fig5_topdown",
    "fig11_speedup",
    "fig12_breakdown",
    "fig13_throughput",
    "fig14_placement_speedup",
    "fig15_placement_energy",
    "fig16_ner_extension",
    "fig17_collectives",
    "fig18_lane_sweep",
    "fig19_pcie_generations",
    "table1_benchmarks",
]

CONCURRENCY_LEVELS = (1, 5, 10, 15)
_LATENCY_REQUESTS = 3
_THROUGHPUT_REQUESTS = 8


def run_mode(
    benchmark: str,
    n_apps: int,
    mode: Mode,
    config: Optional[SystemConfig] = None,
    throughput: bool = False,
):
    """Build and run one (benchmark, concurrency, mode) system."""
    chains = build_benchmark_chains(benchmark, n_apps)
    cfg = replace(config or SystemConfig(), mode=mode) if config else (
        SystemConfig(mode=mode)
    )
    system = DMXSystem(chains, cfg)
    if throughput:
        result = system.run_throughput(_THROUGHPUT_REQUESTS)
    else:
        result = system.run_latency(_LATENCY_REQUESTS)
    return system, result


# -- Fig. 3: motivation ------------------------------------------------------


@dataclass
class BreakdownResult:
    """Phase-fraction series per concurrency level."""

    title: str
    levels: Tuple[int, ...]
    fractions: Dict[int, Dict[str, float]]  # level -> phase -> fraction

    def rows(self) -> List[Sequence[object]]:
        out = []
        for level in self.levels:
            f = self.fractions[level]
            out.append(
                [
                    level,
                    f"{f.get('kernel', 0) * 100:.1f}%",
                    f"{f.get('restructuring', 0) * 100:.1f}%",
                    f"{(f.get('movement', 0) + f.get('control', 0)) * 100:.1f}%",
                ]
            )
        return out


def _geomean_fractions(mode: Mode, n_apps: int) -> Dict[str, float]:
    """Per-phase fractions, geomean-weighted across the five benchmarks."""
    totals: Dict[str, List[float]] = {}
    for name in benchmark_names():
        _, result = run_mode(name, n_apps, mode)
        for phase, fraction in result.phase_fractions().items():
            totals.setdefault(phase, []).append(fraction)
    return {
        phase: sum(values) / len(values) for phase, values in totals.items()
    }


def fig3a_runtime_breakdown(
    levels: Sequence[int] = CONCURRENCY_LEVELS,
) -> Dict[str, BreakdownResult]:
    """Fig. 3(a): runtime breakdown for All-CPU and Multi-Axl."""
    out = {}
    for mode, label in ((Mode.ALL_CPU, "All-CPU"), (Mode.MULTI_AXL, "Multi-Axl")):
        fractions = {level: _geomean_fractions(mode, level) for level in levels}
        out[label] = BreakdownResult(label, tuple(levels), fractions)
    return out


@dataclass
class MotivationResult:
    """Fig. 3(b): end-to-end vs per-kernel speedup."""

    end_to_end: Dict[int, float]  # n_apps -> Multi-Axl speedup over All-CPU
    per_kernel_geomean: float


def fig3b_motivation_speedup(levels: Sequence[int] = (1, 10)) -> MotivationResult:
    end_to_end = {}
    for level in levels:
        ratios = []
        for name in benchmark_names():
            _, cpu_run = run_mode(name, level, Mode.ALL_CPU)
            _, axl_run = run_mode(name, level, Mode.MULTI_AXL)
            ratios.append(cpu_run.mean_latency() / axl_run.mean_latency())
        end_to_end[level] = geometric_mean(ratios)
    speedups = []
    for name in benchmark_names():
        chains = build_benchmark_chains(name, 1)
        for stage in chains[0].kernel_stages:
            speedups.append(stage.spec.speedup_vs_cpu)
    return MotivationResult(
        end_to_end=end_to_end, per_kernel_geomean=geometric_mean(speedups)
    )


# -- Fig. 5: restructuring characterization --------------------------------------


@dataclass
class TopDownResult:
    """Per-benchmark top-down attribution of its restructuring work."""

    rows_by_benchmark: Dict[str, Dict[str, float]]

    def rows(self) -> List[Sequence[object]]:
        out = []
        for name, r in self.rows_by_benchmark.items():
            out.append(
                [
                    name,
                    f"{r['retiring'] * 100:.1f}%",
                    f"{r['front_end_bound'] * 100:.1f}%",
                    f"{r['bad_speculation'] * 100:.1f}%",
                    f"{r['backend_core_bound'] * 100:.1f}%",
                    f"{r['backend_memory_bound'] * 100:.1f}%",
                    f"{r['l1i_mpki']:.1f}",
                    f"{r['l1d_mpki']:.0f}",
                    f"{r['l2_mpki']:.0f}",
                ]
            )
        return out


def fig5_topdown() -> TopDownResult:
    """Fig. 5: top-down stall breakdown + MPKI per restructuring suite."""
    model = TopDownModel(XEON_8260L)
    rows = {}
    for name in benchmark_names():
        chain = build_benchmark_chains(name, 1)[0]
        profile = chain.motion_stages[0].profile
        breakdown = model.analyze(profile)
        row = breakdown.as_dict()
        row["l1i_mpki"] = breakdown.cache.l1i_mpki
        row["l1d_mpki"] = breakdown.cache.l1d_mpki
        row["l2_mpki"] = breakdown.cache.l2_mpki
        rows[name] = row
    return TopDownResult(rows)


# -- Fig. 11-13: headline results ---------------------------------------------


@dataclass
class SpeedupResult:
    """Per-benchmark ratios (DMX over Multi-Axl) per concurrency level."""

    metric: str
    levels: Tuple[int, ...]
    per_benchmark: Dict[str, Dict[int, float]]

    def geomean(self, level: int) -> float:
        return geometric_mean(
            [series[level] for series in self.per_benchmark.values()]
        )

    def rows(self) -> List[Sequence[object]]:
        out = []
        for name, series in self.per_benchmark.items():
            out.append([name] + [f"{series[l]:.2f}x" for l in self.levels])
        out.append(
            ["GEOMEAN"] + [f"{self.geomean(l):.2f}x" for l in self.levels]
        )
        return out


def fig11_speedup(levels: Sequence[int] = CONCURRENCY_LEVELS) -> SpeedupResult:
    """Fig. 11: DMX (Bump-in-the-Wire) latency speedup over Multi-Axl."""
    per_benchmark: Dict[str, Dict[int, float]] = {}
    for name in benchmark_names():
        series = {}
        for level in levels:
            _, base = run_mode(name, level, Mode.MULTI_AXL)
            _, dmx = run_mode(name, level, Mode.BUMP_IN_WIRE)
            series[level] = base.mean_latency() / dmx.mean_latency()
        per_benchmark[name] = series
    return SpeedupResult("latency-speedup", tuple(levels), per_benchmark)


def fig12_breakdown(
    levels: Sequence[int] = CONCURRENCY_LEVELS,
) -> Dict[str, BreakdownResult]:
    """Fig. 12: runtime breakdown for Multi-Axl (a) and DMX (b)."""
    out = {}
    for mode, label in (
        (Mode.MULTI_AXL, "Multi-Axl"),
        (Mode.BUMP_IN_WIRE, "DMX"),
    ):
        fractions = {level: _geomean_fractions(mode, level) for level in levels}
        out[label] = BreakdownResult(label, tuple(levels), fractions)
    return out


def fig13_throughput(levels: Sequence[int] = CONCURRENCY_LEVELS) -> SpeedupResult:
    """Fig. 13: DMX throughput improvement over Multi-Axl."""
    per_benchmark: Dict[str, Dict[int, float]] = {}
    for name in benchmark_names():
        series = {}
        for level in levels:
            _, base = run_mode(name, level, Mode.MULTI_AXL, throughput=True)
            _, dmx = run_mode(name, level, Mode.BUMP_IN_WIRE, throughput=True)
            series[level] = dmx.throughput() / base.throughput()
        per_benchmark[name] = series
    return SpeedupResult("throughput-improvement", tuple(levels), per_benchmark)


# -- Fig. 14-15: placement studies ---------------------------------------------

_PLACEMENTS = (
    Mode.INTEGRATED,
    Mode.STANDALONE,
    Mode.BUMP_IN_WIRE,
    Mode.PCIE_INTEGRATED,
)


@dataclass
class PlacementResult:
    """Average-over-benchmarks ratios per placement per level."""

    metric: str
    levels: Tuple[int, ...]
    per_placement: Dict[Mode, Dict[int, float]]

    def rows(self) -> List[Sequence[object]]:
        return [
            [mode.value] + [f"{series[l]:.2f}x" for l in self.levels]
            for mode, series in self.per_placement.items()
        ]


def fig14_placement_speedup(
    levels: Sequence[int] = CONCURRENCY_LEVELS,
    placements: Sequence[Mode] = _PLACEMENTS,
) -> PlacementResult:
    """Fig. 14: latency speedup of each DRX placement over Multi-Axl."""
    per_placement: Dict[Mode, Dict[int, float]] = {m: {} for m in placements}
    for level in levels:
        base_latencies = {}
        for name in benchmark_names():
            _, base = run_mode(name, level, Mode.MULTI_AXL)
            base_latencies[name] = base.mean_latency()
        for mode in placements:
            ratios = []
            for name in benchmark_names():
                _, run = run_mode(name, level, mode)
                ratios.append(base_latencies[name] / run.mean_latency())
            per_placement[mode][level] = geometric_mean(ratios)
    return PlacementResult("placement-speedup", tuple(levels), per_placement)


def fig15_placement_energy(
    levels: Sequence[int] = CONCURRENCY_LEVELS,
    placements: Sequence[Mode] = (
        Mode.INTEGRATED,
        Mode.STANDALONE,
        Mode.BUMP_IN_WIRE,
    ),
) -> PlacementResult:
    """Fig. 15: system energy reduction vs Multi-Axl per placement.

    PCIe-Integrated is excluded, as in the paper ("because of the
    difficulty of estimating the energy consumption of a PCIe switch
    integrated with DRX").
    """
    model = EnergyModel()
    per_placement: Dict[Mode, Dict[int, float]] = {m: {} for m in placements}
    for level in levels:
        base_energy = {}
        for name in benchmark_names():
            system, result = run_mode(name, level, Mode.MULTI_AXL)
            base_energy[name] = (
                model.evaluate_system(system).total_j / len(result.records)
            )
        for mode in placements:
            ratios = []
            for name in benchmark_names():
                system, result = run_mode(name, level, mode)
                energy = (
                    model.evaluate_system(system).total_j / len(result.records)
                )
                ratios.append(base_energy[name] / energy)
            per_placement[mode][level] = geometric_mean(ratios)
    return PlacementResult("energy-reduction", tuple(levels), per_placement)


# -- Fig. 16: three-kernel extension ------------------------------------------


@dataclass
class NERResult:
    speedups: Dict[int, float]
    dmx_motion_fraction: Dict[int, float]  # restructuring+movement share
    baseline_restructure_fraction: Dict[int, float]


def fig16_ner_extension(levels: Sequence[int] = CONCURRENCY_LEVELS) -> NERResult:
    """Fig. 16: PIR + NER (three kernels, two data-motion steps)."""
    speedups, motion_frac, base_frac = {}, {}, {}
    for level in levels:
        _, base = run_mode("pii-ner", level, Mode.MULTI_AXL)
        _, dmx = run_mode("pii-ner", level, Mode.BUMP_IN_WIRE)
        speedups[level] = base.mean_latency() / dmx.mean_latency()
        dmx_fracs = dmx.phase_fractions()
        motion_frac[level] = (
            dmx_fracs.get("restructuring", 0.0)
            + dmx_fracs.get("movement", 0.0)
            + dmx_fracs.get("control", 0.0)
        )
        base_frac[level] = base.phase_fractions().get("restructuring", 0.0)
    return NERResult(speedups, motion_frac, base_frac)


# -- Fig. 17: collectives ------------------------------------------------------


@dataclass
class CollectiveResultSeries:
    operation: str
    speedups: Dict[int, float]  # n_accelerators -> DMX speedup


def fig17_collectives(
    fan_outs: Sequence[int] = (4, 8, 16, 32),
    payload_bytes: int = 8 * 1024 * 1024,
) -> Dict[str, CollectiveResultSeries]:
    """Fig. 17: broadcast and all-reduce speedups on 4-32 accelerators."""
    out = {}
    for operation in ("broadcast", "allreduce"):
        speedups = {}
        for n in fan_outs:
            base = CollectiveSystem(
                n, SystemConfig(mode=Mode.MULTI_AXL)
            ).run(operation, payload_bytes)
            dmx = CollectiveSystem(
                n, SystemConfig(mode=Mode.BUMP_IN_WIRE)
            ).run(operation, payload_bytes)
            speedups[n] = base.latency_s / dmx.latency_s
        out[operation] = CollectiveResultSeries(operation, speedups)
    return out


# -- Fig. 18: RE-lane sensitivity ----------------------------------------------


def fig18_lane_sweep(
    lanes: Sequence[int] = (32, 64, 128, 256),
    n_apps: int = 5,
) -> Dict[int, float]:
    """Fig. 18: DMX speedup vs Multi-Axl as RE lane count sweeps."""
    out = {}
    for lane_count in lanes:
        config = SystemConfig(
            mode=Mode.BUMP_IN_WIRE, drx=DRXConfig(lanes=lane_count)
        )
        ratios = []
        for name in benchmark_names():
            _, base = run_mode(name, n_apps, Mode.MULTI_AXL)
            _, dmx = run_mode(name, n_apps, Mode.BUMP_IN_WIRE, config=config)
            ratios.append(base.mean_latency() / dmx.mean_latency())
        out[lane_count] = geometric_mean(ratios)
    return out


# -- Fig. 19: PCIe generation sensitivity ----------------------------------------


def fig19_pcie_generations(
    gens: Sequence[PCIeGen] = (PCIeGen.GEN3, PCIeGen.GEN4, PCIeGen.GEN5),
    n_apps: int = 10,
) -> Dict[str, float]:
    """Fig. 19: BITW speedup under PCIe Gen 3/4/5.

    Per the paper's discussion, the *baseline* benefits twice from newer
    generations: more bandwidth per lane AND more usable lanes to the
    CPU ("the baselines are able to use more PCIe lanes to reduce
    bandwidth contention from accelerators to CPUs with PCIe Gen 4 and
    Gen 5"). The DMX data path never touches the CPU links, so its
    configuration only gains the per-lane bandwidth.
    """
    out = {}
    for gen in gens:
        lanes = 8 if gen == PCIeGen.GEN3 else 16
        config = SystemConfig(mode=Mode.BUMP_IN_WIRE, pcie_gen=gen)
        base_config = SystemConfig(
            mode=Mode.MULTI_AXL, pcie_gen=gen,
            upstream_lanes=lanes, accelerator_lanes=lanes,
        )
        ratios = []
        for name in benchmark_names():
            _, base = run_mode(name, n_apps, Mode.MULTI_AXL, config=base_config)
            _, dmx = run_mode(name, n_apps, Mode.BUMP_IN_WIRE, config=config)
            ratios.append(base.mean_latency() / dmx.mean_latency())
        out[gen.name] = geometric_mean(ratios)
    return out


# -- Table I -------------------------------------------------------------------


def table1_benchmarks() -> List[Sequence[str]]:
    """Table I: benchmark inventory with kernels and restructuring ops."""
    rows = []
    for name in benchmark_names():
        chain = build_benchmark_chains(name, 1)[0]
        kernels = chain.kernel_stages
        motion = chain.motion_stages[0]
        rows.append(
            [
                name,
                kernels[0].name,
                kernels[0].spec.implementation,
                motion.name,
                kernels[1].name,
                kernels[1].spec.implementation,
                f"{motion.input_bytes / 1e6:.1f} MB",
            ]
        )
    return rows
