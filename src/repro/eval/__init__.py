"""Experiment harness: one driver per paper table/figure + reporting."""

from .ablations import (
    ablate_batch_size,
    ablate_decoupling,
    ablate_notification_strategy,
    ablate_scalar_residual,
    ablate_scratchpad_capacity,
    ablate_scratchpad_fusion,
)
from .experiments import (
    CONCURRENCY_LEVELS,
    fig3a_runtime_breakdown,
    fig3b_motivation_speedup,
    fig5_topdown,
    fig11_speedup,
    fig12_breakdown,
    fig13_throughput,
    fig14_placement_speedup,
    fig15_placement_energy,
    fig16_ner_extension,
    fig17_collectives,
    fig18_lane_sweep,
    fig19_pcie_generations,
    run_mode,
    table1_benchmarks,
)
from .report import Banner, format_ratio, format_table

__all__ = [
    "ablate_batch_size",
    "ablate_decoupling",
    "ablate_notification_strategy",
    "ablate_scalar_residual",
    "ablate_scratchpad_capacity",
    "ablate_scratchpad_fusion",
    "CONCURRENCY_LEVELS",
    "fig3a_runtime_breakdown",
    "fig3b_motivation_speedup",
    "fig5_topdown",
    "fig11_speedup",
    "fig12_breakdown",
    "fig13_throughput",
    "fig14_placement_speedup",
    "fig15_placement_energy",
    "fig16_ner_extension",
    "fig17_collectives",
    "fig18_lane_sweep",
    "fig19_pcie_generations",
    "run_mode",
    "table1_benchmarks",
    "Banner",
    "format_ratio",
    "format_table",
    "ExperimentStore",
    "IncompleteGridError",
    "OrchestratorError",
    "collect",
    "decode_experiment",
    "encode_experiment",
    "fill_store",
    "grid_points",
    "point_key",
    "run_grid",
    "run_workers",
]

#: Names served lazily from :mod:`repro.eval.orchestrator` (PEP 562).
#: Deferring the import keeps ``python -m repro.eval.orchestrator``
#: clean (runpy warns when the package body already imported the
#: submodule it is about to execute) and keeps sqlite/multiprocessing
#: out of the figure drivers' import path.
_ORCHESTRATOR_EXPORTS = frozenset({
    "ExperimentStore", "IncompleteGridError", "OrchestratorError",
    "collect", "decode_experiment", "encode_experiment", "fill_store",
    "grid_points", "point_key", "run_grid", "run_workers",
})


def __getattr__(name):
    if name in _ORCHESTRATOR_EXPORTS:
        from . import orchestrator

        return getattr(orchestrator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
