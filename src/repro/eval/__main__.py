"""CLI: regenerate every table and figure.

Usage::

    python -m repro.eval            # everything
    python -m repro.eval fig11 fig13   # selected experiments
"""

from __future__ import annotations

import sys

from . import experiments as X
from .report import Banner, format_table


def _print_fig3a() -> None:
    print(Banner("Fig. 3(a): runtime breakdown, All-CPU vs Multi-Axl"))
    for label, result in X.fig3a_runtime_breakdown().items():
        print(format_table(
            ["apps", "kernel", "restructuring", "movement"],
            result.rows(), title=f"[{label}]",
        ))
        print()


def _print_fig3b() -> None:
    print(Banner("Fig. 3(b): end-to-end vs per-kernel speedup"))
    result = X.fig3b_motivation_speedup()
    for level, value in result.end_to_end.items():
        print(f"  Multi-Axl end-to-end speedup @ {level} apps: {value:.2f}x")
    print(f"  per-accelerator kernel speedup (geomean): "
          f"{result.per_kernel_geomean:.2f}x")
    print()


def _print_fig5() -> None:
    print(Banner("Fig. 5: top-down breakdown of restructuring ops"))
    print(format_table(
        ["benchmark", "retire", "frontend", "badspec", "core", "memory",
         "L1I MPKI", "L1D MPKI", "L2 MPKI"],
        X.fig5_topdown().rows(),
    ))
    print()


def _print_fig11() -> None:
    print(Banner("Fig. 11: DMX latency speedup over Multi-Axl"))
    result = X.fig11_speedup()
    print(format_table(
        ["benchmark"] + [f"{l} apps" for l in result.levels], result.rows()
    ))
    print()


def _print_fig12() -> None:
    print(Banner("Fig. 12: runtime breakdown, Multi-Axl vs DMX"))
    for label, result in X.fig12_breakdown().items():
        print(format_table(
            ["apps", "kernel", "restructuring", "movement"],
            result.rows(), title=f"[{label}]",
        ))
        print()


def _print_fig13() -> None:
    print(Banner("Fig. 13: DMX throughput improvement over Multi-Axl"))
    result = X.fig13_throughput()
    print(format_table(
        ["benchmark"] + [f"{l} apps" for l in result.levels], result.rows()
    ))
    print()


def _print_fig14() -> None:
    print(Banner("Fig. 14: speedup by DRX placement"))
    result = X.fig14_placement_speedup()
    print(format_table(
        ["placement"] + [f"{l} apps" for l in result.levels], result.rows()
    ))
    print()


def _print_fig15() -> None:
    print(Banner("Fig. 15: energy reduction by DRX placement"))
    result = X.fig15_placement_energy()
    print(format_table(
        ["placement"] + [f"{l} apps" for l in result.levels], result.rows()
    ))
    print()


def _print_fig16() -> None:
    print(Banner("Fig. 16: PIR + NER (three kernels)"))
    result = X.fig16_ner_extension()
    rows = [
        [level, f"{result.speedups[level]:.2f}x",
         f"{result.dmx_motion_fraction[level] * 100:.1f}%",
         f"{result.baseline_restructure_fraction[level] * 100:.1f}%"]
        for level in result.speedups
    ]
    print(format_table(
        ["apps", "DMX speedup", "DMX motion share", "baseline restr share"],
        rows,
    ))
    print()


def _print_fig17() -> None:
    print(Banner("Fig. 17: collective-communication speedups"))
    for operation, series in X.fig17_collectives().items():
        rows = [[n, f"{v:.2f}x"] for n, v in series.speedups.items()]
        print(format_table(["accelerators", "speedup"], rows,
                           title=f"[{operation}]"))
        print()


def _print_fig18() -> None:
    print(Banner("Fig. 18: RE-lane sensitivity"))
    rows = [[lanes, f"{v:.2f}x"] for lanes, v in X.fig18_lane_sweep().items()]
    print(format_table(["RE lanes", "speedup"], rows))
    print()


def _print_fig19() -> None:
    print(Banner("Fig. 19: PCIe generation sensitivity"))
    rows = [[gen, f"{v:.2f}x"] for gen, v in X.fig19_pcie_generations().items()]
    print(format_table(["PCIe gen", "DMX speedup"], rows))
    print()


def _print_table1() -> None:
    print(Banner("Table I: end-to-end benchmarks"))
    print(format_table(
        ["benchmark", "kernel 1", "impl", "restructuring", "kernel 2",
         "impl", "intermediate"],
        X.table1_benchmarks(),
    ))
    print()


_ALL = {
    "table1": _print_table1,
    "fig3a": _print_fig3a,
    "fig3b": _print_fig3b,
    "fig5": _print_fig5,
    "fig11": _print_fig11,
    "fig12": _print_fig12,
    "fig13": _print_fig13,
    "fig14": _print_fig14,
    "fig15": _print_fig15,
    "fig16": _print_fig16,
    "fig17": _print_fig17,
    "fig18": _print_fig18,
    "fig19": _print_fig19,
}


def main(argv=None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or list(_ALL)
    unknown = [n for n in names if n not in _ALL]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {list(_ALL)}")
        return 2
    for name in names:
        _ALL[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
