"""Turn run artifacts into figures: latency-vs-load knees, backend crossovers.

``python -m repro.eval.plot`` renders the two figure families the
evaluation leans on, from artifacts the sweep/orchestrator layers
already emit — no simulation rerun:

* ``knee`` — offered load vs p99 latency per placement mode, from a
  :meth:`~repro.serve.sweep.SweepResult.to_json` file, a JSON-lines file
  of sweep-point dicts, or an orchestrator SQLite store
  (``repro.eval.orchestrator`` collect output);
* ``crossover`` — payload size vs mean leg latency per restructuring
  backend, from a JSON file of ``{payload_bytes, backend, mean_s}``
  records (the shape ``benchmarks/test_backend_planner.py`` sweeps).

Figures are written to **deterministic output paths** under
``--out-dir``: always a self-contained SVG rendered by the in-tree
writer (byte-identical across runs for identical inputs), plus a PNG
when matplotlib is importable. matplotlib is strictly optional — the
module, the CLI, and the smoke tests run without it.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Series",
    "load_sweep_points",
    "load_crossover_records",
    "render_svg",
    "compose_svg",
    "knee_figure",
    "crossover_figure",
    "main",
]

# Deliberately small, fixed palette: series color assignment follows
# sorted label order, so output bytes never depend on dict ordering.
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
            "#8c564b", "#17becf")

_W, _H = 640, 420
_ML, _MR, _MT, _MB = 72, 16, 36, 56  # margins: left/right/top/bottom


class Series:
    """One labeled polyline: ``points`` are ascending (x, y) pairs."""

    def __init__(self, label: str, points: Sequence[Tuple[float, float]]):
        self.label = label
        self.points = sorted((float(x), float(y)) for x, y in points)


# -- artifact loading ----------------------------------------------------------


def load_sweep_points(path: str) -> List[Dict[str, object]]:
    """Sweep-point dicts from a JSON sweep result, a JSON-lines file, or
    an orchestrator SQLite store (done rows' result payloads)."""
    if path.endswith((".db", ".sqlite", ".sqlite3")):
        with sqlite3.connect(path) as conn:
            rows = conn.execute(
                "SELECT result_json FROM experiments "
                "WHERE status = 'done' ORDER BY point_key"
            ).fetchall()
        return [json.loads(row[0]) for row in rows if row[0]]
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.strip()
    if not stripped:
        return []
    if path.endswith(".jsonl"):
        return [json.loads(line) for line in stripped.splitlines() if line]
    doc = json.loads(stripped)
    if isinstance(doc, dict) and "points" in doc:
        return list(doc["points"])
    if isinstance(doc, list):
        return doc
    raise ValueError(f"unrecognized sweep artifact shape in {path}")


def load_crossover_records(path: str) -> List[Dict[str, object]]:
    """Backend-crossover records: ``{payload_bytes, backend, mean_s}``."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, dict) and "records" in doc:
        doc = doc["records"]
    if not isinstance(doc, list):
        raise ValueError(f"unrecognized crossover artifact shape in {path}")
    return doc


# -- deterministic SVG rendering -----------------------------------------------


def _fmt(value: float) -> str:
    """Fixed-precision coordinate/label formatting: determinism anchor."""
    return f"{value:.2f}"


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    return [lo + (hi - lo) * i / (n - 1) for i in range(n)]


def _chart_lines(
    series: Sequence[Series],
    title: str,
    xlabel: str,
    ylabel: str,
    log_x: bool = False,
    markers: Sequence[Tuple[float, str]] = (),
) -> List[str]:
    """One chart's SVG elements on a ``_W`` x ``_H`` canvas (no ``<svg>``
    wrapper) — shared by the standalone figure writer and the
    multi-panel dashboard compositor.

    ``markers`` are ``(x, label)`` vertical annotation lines (the
    dashboard's alert fire/clear ticks); markers outside the x range are
    skipped.
    """
    series = sorted(series, key=lambda s: s.label)
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    if not xs:
        raise ValueError("nothing to plot: no points in any series")
    tx = (lambda v: math.log10(v)) if log_x else (lambda v: v)
    x_lo, x_hi = min(tx(x) for x in xs), max(tx(x) for x in xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB

    def px(x: float) -> float:
        return _ML + (tx(x) - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MT + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    out: List[str] = []
    out.append(f'<rect width="{_W}" height="{_H}" fill="white"/>')
    out.append(
        f'<text x="{_W // 2}" y="20" text-anchor="middle" '
        f'font-size="13">{title}</text>'
    )
    # Axes + gridlines + tick labels.
    for t in _ticks(y_lo, y_hi):
        y = py(t)
        out.append(
            f'<line x1="{_ML}" y1="{_fmt(y)}" x2="{_W - _MR}" '
            f'y2="{_fmt(y)}" stroke="#dddddd"/>'
        )
        out.append(
            f'<text x="{_ML - 6}" y="{_fmt(y + 4)}" '
            f'text-anchor="end">{_fmt(t)}</text>'
        )
    for t in _ticks(x_lo, x_hi):
        x = _ML + (t - x_lo) / (x_hi - x_lo) * plot_w
        label = 10.0 ** t if log_x else t
        out.append(
            f'<line x1="{_fmt(x)}" y1="{_MT}" x2="{_fmt(x)}" '
            f'y2="{_MT + plot_h}" stroke="#eeeeee"/>'
        )
        out.append(
            f'<text x="{_fmt(x)}" y="{_MT + plot_h + 16}" '
            f'text-anchor="middle">{_fmt(label)}</text>'
        )
    out.append(
        f'<rect x="{_ML}" y="{_MT}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333333"/>'
    )
    out.append(
        f'<text x="{_W // 2}" y="{_H - 12}" '
        f'text-anchor="middle">{xlabel}</text>'
    )
    out.append(
        f'<text x="16" y="{_MT + plot_h // 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {_MT + plot_h // 2})">{ylabel}</text>'
    )
    # Series polylines + markers + legend.
    for index, s in enumerate(series):
        color = _PALETTE[index % len(_PALETTE)]
        coords = " ".join(
            f"{_fmt(px(x))},{_fmt(py(y))}" for x, y in s.points
        )
        out.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"/>'
        )
        for x, y in s.points:
            out.append(
                f'<circle cx="{_fmt(px(x))}" cy="{_fmt(py(y))}" r="2.5" '
                f'fill="{color}"/>'
            )
        ly = _MT + 14 + index * 14
        out.append(
            f'<line x1="{_ML + 8}" y1="{ly - 4}" x2="{_ML + 28}" '
            f'y2="{ly - 4}" stroke="{color}" stroke-width="1.5"/>'
        )
        out.append(f'<text x="{_ML + 34}" y="{ly}">{s.label}</text>')
    # Vertical annotation markers (alert fires/clears), drawn on top.
    for mx, label in markers:
        if not x_lo <= tx(mx) <= x_hi:
            continue
        x = px(mx)
        out.append(
            f'<line x1="{_fmt(x)}" y1="{_MT}" x2="{_fmt(x)}" '
            f'y2="{_MT + plot_h}" stroke="#d62728" '
            f'stroke-dasharray="4,3"/>'
        )
        out.append(
            f'<text x="{_fmt(x + 3)}" y="{_MT + 12}" '
            f'fill="#d62728">{label}</text>'
        )
    return out


def render_svg(
    series: Sequence[Series],
    path: str,
    title: str,
    xlabel: str,
    ylabel: str,
    log_x: bool = False,
    markers: Sequence[Tuple[float, str]] = (),
) -> str:
    """Write a line chart as a standalone SVG; returns ``path``.

    Pure function of its inputs: fixed canvas, fixed palette in sorted
    label order, fixed-precision coordinates — identical inputs yield
    byte-identical files on every platform.
    """
    out: List[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
        f'height="{_H}" viewBox="0 0 {_W} {_H}" '
        f'font-family="monospace" font-size="11">'
    )
    out.extend(_chart_lines(
        series, title, xlabel, ylabel, log_x=log_x, markers=markers
    ))
    out.append("</svg>")
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write("\n".join(out))
        fh.write("\n")
    return path


def compose_svg(
    panels: Sequence[Dict[str, object]],
    path: str,
    cols: int = 2,
) -> str:
    """Write a multi-panel SVG dashboard; returns ``path``.

    Each panel is the kwargs of :func:`_chart_lines` (``series``,
    ``title``, ``xlabel``, ``ylabel``, optional ``log_x``/``markers``)
    rendered onto its own ``_W`` x ``_H`` tile, laid out row-major in a
    ``cols``-wide grid of ``<g transform="translate(...)">`` groups —
    the same deterministic primitives as the single figures, so equal
    inputs compose byte-identically.
    """
    if not panels:
        raise ValueError("nothing to compose: no panels")
    cols = max(1, min(cols, len(panels)))
    rows = (len(panels) + cols - 1) // cols
    total_w, total_h = cols * _W, rows * _H
    out: List[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" '
        f'height="{total_h}" viewBox="0 0 {total_w} {total_h}" '
        f'font-family="monospace" font-size="11">'
    )
    for index, panel in enumerate(panels):
        x = (index % cols) * _W
        y = (index // cols) * _H
        out.append(f'<g transform="translate({x},{y})">')
        out.extend(_chart_lines(
            panel["series"],  # type: ignore[arg-type]
            str(panel["title"]),
            str(panel["xlabel"]),
            str(panel["ylabel"]),
            log_x=bool(panel.get("log_x", False)),
            markers=panel.get("markers", ()),  # type: ignore[arg-type]
        ))
        out.append("</g>")
    out.append("</svg>")
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write("\n".join(out))
        fh.write("\n")
    return path


def _maybe_png(
    series: Sequence[Series],
    path: str,
    title: str,
    xlabel: str,
    ylabel: str,
    log_x: bool = False,
) -> Optional[str]:
    """Additionally render via matplotlib when it is importable; the
    SVG path is the contract, the PNG is a convenience."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except Exception:
        return None
    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    for index, s in enumerate(sorted(series, key=lambda x: x.label)):
        xs = [x for x, _ in s.points]
        ys = [y for _, y in s.points]
        ax.plot(xs, ys, marker="o", label=s.label,
                color=_PALETTE[index % len(_PALETTE)])
    if log_x:
        ax.set_xscale("log")
    ax.set_title(title)
    ax.set_xlabel(xlabel)
    ax.set_ylabel(ylabel)
    ax.legend()
    fig.tight_layout()
    fig.savefig(path)
    plt.close(fig)
    return path


# -- figure families -----------------------------------------------------------


def knee_figure(
    points: Sequence[Dict[str, object]],
    out_dir: str,
    stem: str = "knee",
    metric: str = "p99_s",
) -> List[str]:
    """Latency-vs-load knee: one series per mode, ``metric`` in ms."""
    by_mode: Dict[str, List[Tuple[float, float]]] = {}
    for point in points:
        by_mode.setdefault(str(point["mode"]), []).append(
            (float(point["offered_rps"]), float(point[metric]) * 1e3)
        )
    if not by_mode:
        raise ValueError("no sweep points to plot")
    series = [Series(mode, pts) for mode, pts in by_mode.items()]
    os.makedirs(out_dir, exist_ok=True)
    svg = os.path.join(out_dir, f"{stem}.svg")
    written = [render_svg(
        series, svg, title=f"latency-vs-load knee ({metric})",
        xlabel="offered load (req/s)", ylabel=f"{metric} (ms)",
    )]
    png = _maybe_png(
        series, os.path.join(out_dir, f"{stem}.png"),
        title=f"latency-vs-load knee ({metric})",
        xlabel="offered load (req/s)", ylabel=f"{metric} (ms)",
    )
    if png:
        written.append(png)
    return written


def crossover_figure(
    records: Sequence[Dict[str, object]],
    out_dir: str,
    stem: str = "backend-crossover",
) -> List[str]:
    """Backend-crossover: payload size (log x) vs mean leg latency per
    restructuring backend — the DSA/DRX/XDMA/planner comparison."""
    by_backend: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        by_backend.setdefault(str(record["backend"]), []).append(
            (float(record["payload_bytes"]), float(record["mean_s"]) * 1e6)
        )
    if not by_backend:
        raise ValueError("no crossover records to plot")
    series = [Series(backend, pts) for backend, pts in by_backend.items()]
    os.makedirs(out_dir, exist_ok=True)
    svg = os.path.join(out_dir, f"{stem}.svg")
    written = [render_svg(
        series, svg, title="restructuring-backend crossover",
        xlabel="payload (bytes, log10 ticks)", ylabel="mean leg (us)",
        log_x=True,
    )]
    png = _maybe_png(
        series, os.path.join(out_dir, f"{stem}.png"),
        title="restructuring-backend crossover",
        xlabel="payload (bytes)", ylabel="mean leg (us)", log_x=True,
    )
    if png:
        written.append(png)
    return written


# -- CLI -----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.plot",
        description="Render figures from sweep/orchestrator artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    knee = sub.add_parser("knee", help="latency-vs-load knee figure")
    knee.add_argument("--input", required=True,
                      help="sweep JSON / JSONL / orchestrator .db")
    knee.add_argument("--out-dir", required=True)
    knee.add_argument("--stem", default="knee")
    knee.add_argument("--metric", default="p99_s",
                      choices=("p50_s", "p95_s", "p99_s", "mean_s"))
    cross = sub.add_parser("crossover", help="backend-crossover figure")
    cross.add_argument("--input", required=True,
                       help="JSON of {payload_bytes, backend, mean_s}")
    cross.add_argument("--out-dir", required=True)
    cross.add_argument("--stem", default="backend-crossover")
    args = parser.parse_args(argv)

    if args.command == "knee":
        written = knee_figure(
            load_sweep_points(args.input), args.out_dir,
            stem=args.stem, metric=args.metric,
        )
    else:
        written = crossover_figure(
            load_crossover_records(args.input), args.out_dir,
            stem=args.stem,
        )
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
