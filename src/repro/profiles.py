"""Shared work-characterization dataclasses.

A :class:`WorkProfile` is the contract between the functional layer and
the timing layer: every kernel and every data-restructuring operation can
describe one invocation's work as element counts, arithmetic intensity,
and control-flow character. The CPU cost model, the CPU top-down
characterization (Fig. 5), and the DRX microarchitecture timing model all
consume the same profile, so "the same work" is priced consistently on
both sides of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["WorkProfile", "scale_profile"]


@dataclass(frozen=True)
class WorkProfile:
    """One invocation's worth of data-parallel work.

    Parameters
    ----------
    name:
        Label (e.g. ``"mel_scale"``), used in reports.
    bytes_in, bytes_out:
        Data read from / written to memory. Streaming restructuring ops
        touch each input byte about once; the models rely on this.
    elements:
        Number of logical elements processed (drives compute time).
    ops_per_element:
        Arithmetic operations applied per element (adds, muls, compares,
        type conversions all count as one).
    element_size:
        Bytes per element (4 for fp32/int32, 1 for bytes, ...).
    branch_fraction:
        Fraction of instructions that are branches — drives bad-speculation
        and front-end behaviour in the top-down model. Restructuring ops
        are loop-dominated, so this is small (0.02–0.12).
    mispredict_rate:
        Branch misprediction probability.
    vectorizable_fraction:
        Fraction of the arithmetic that vectorizes (the paper measures
        100% vector-capacity use for restructuring; parsing-flavoured ops
        are lower).
    gather_fraction:
        Fraction of memory accesses that are non-streaming (gathers /
        pointer chasing). Raises cache miss costs.
    """

    name: str
    bytes_in: int
    bytes_out: int
    elements: int
    ops_per_element: float
    element_size: int = 4
    branch_fraction: float = 0.05
    mispredict_rate: float = 0.03
    vectorizable_fraction: float = 1.0
    gather_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_in < 0 or self.bytes_out < 0:
            raise ValueError(f"{self.name}: negative byte counts")
        if self.elements < 0:
            raise ValueError(f"{self.name}: negative element count")
        if self.ops_per_element < 0:
            raise ValueError(f"{self.name}: negative ops_per_element")
        if self.element_size <= 0:
            raise ValueError(f"{self.name}: element_size must be positive")
        for field_name in (
            "branch_fraction",
            "mispredict_rate",
            "vectorizable_fraction",
            "gather_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {field_name}={value} not in [0, 1]")

    @property
    def total_ops(self) -> float:
        """Total arithmetic operations in this invocation."""
        return self.elements * self.ops_per_element

    @property
    def total_bytes(self) -> int:
        """Total memory traffic (read + write)."""
        return self.bytes_in + self.bytes_out

    @property
    def arithmetic_intensity(self) -> float:
        """Ops per byte of memory traffic (roofline x-axis)."""
        if self.total_bytes == 0:
            return 0.0
        return self.total_ops / self.total_bytes


def scale_profile(profile: WorkProfile, factor: float) -> WorkProfile:
    """Scale a profile's volume (bytes, elements) by ``factor``.

    Character fields (branchiness, vectorizability) are volume-independent
    and kept as-is. Used to derive per-batch profiles from per-unit ones.
    """
    if factor < 0:
        raise ValueError(f"negative scale factor: {factor}")
    return replace(
        profile,
        bytes_in=int(round(profile.bytes_in * factor)),
        bytes_out=int(round(profile.bytes_out * factor)),
        elements=int(round(profile.elements * factor)),
    )
