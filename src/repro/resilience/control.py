"""The control plane facade :class:`DMXSystem` embeds.

One :class:`ControlPlane` owns the shared
:class:`~repro.resilience.health.HealthMonitor` and one
:class:`~repro.resilience.breaker.CircuitBreaker` per dispatch target
(created lazily, seeded deterministically per target), and mirrors every
breaker transition and reroute into the run's telemetry:

* counters ``breaker_transitions{target=..., to=...}`` and
  ``breaker_reroutes{target=...}``,
* instants ``breaker_open`` / ``breaker_half_open`` / ``breaker_closed``
  and ``breaker_reroute`` (with the reroute destination),

so the report CLI and run artifacts show when and why traffic was
steered. The per-target rng seed mixes the plane's seed with a CRC of
the target name — stable across runs and independent of the order in
which targets first see traffic.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from .breaker import BreakerConfig, BreakerDecision, BreakerState, \
    CircuitBreaker
from .health import HealthConfig, HealthMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

__all__ = ["ResilienceConfig", "ControlPlane"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything :class:`~repro.core.system.DMXSystem` needs to arm
    its control plane.

    ``reroute_alternates=True`` lets an open breaker steer a motion
    stage to another DRX unit of the same placement (another standalone
    card, another switch's DRX) before degrading to CPU restructuring;
    with ``False`` an open breaker always degrades straight to CPU.
    """

    seed: int = 0
    health: HealthConfig = HealthConfig()
    breaker: BreakerConfig = BreakerConfig()
    reroute_alternates: bool = True


class ControlPlane:
    """Health monitor + per-target breakers + telemetry mirroring."""

    def __init__(
        self,
        sim,
        telemetry: Optional["Telemetry"],
        config: ResilienceConfig = ResilienceConfig(),
    ):
        self.sim = sim
        self.config = config
        self._telemetry = (
            telemetry
            if telemetry is not None and telemetry.enabled
            else None
        )
        self.monitor = HealthMonitor(telemetry, config.health)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.reroutes = 0
        self.transitions = 0

    # -- breakers ------------------------------------------------------------

    def breaker(self, target: str) -> CircuitBreaker:
        """The target's breaker (created on first use)."""
        breaker = self._breakers.get(target)
        if breaker is None:
            seed = (
                zlib.crc32(target.encode("utf-8")) ^ self.config.seed
            ) & 0xFFFFFFFF
            breaker = CircuitBreaker(
                self.sim,
                target,
                self.monitor,
                self.config.breaker,
                rng=random.Random(seed),
                on_transition=self._record_transition,
            )
            self._breakers[target] = breaker
        return breaker

    def admit(self, target: str) -> BreakerDecision:
        """Dispatch-side gate: may a request use ``target`` right now?"""
        return self.breaker(target).allow()

    def record(
        self,
        target: str,
        ok: bool,
        latency_s: Optional[float] = None,
        probe: bool = False,
    ) -> None:
        """Fold one dispatch outcome back into the target's breaker."""
        self.breaker(target).record(ok, latency_s, probe=probe)

    def _record_transition(
        self, breaker: CircuitBreaker, old: BreakerState, new: BreakerState
    ) -> None:
        self.transitions += 1
        t = self._telemetry
        if t is None:
            return
        t.counter(
            "breaker_transitions", target=breaker.target, to=new.value
        ).inc()
        t.instant(
            f"breaker_{new.value}", "breaker", actor=breaker.target,
            state=new.value, **{"from": old.value},
        )

    def note_reroute(self, target: str, to: str, request_id: int) -> None:
        """One request steered away from ``target`` (to another unit or
        to CPU restructuring) by an open breaker."""
        self.reroutes += 1
        t = self._telemetry
        if t is None:
            return
        t.counter("breaker_reroutes", target=target).inc()
        t.instant(
            "breaker_reroute", "breaker", actor=target,
            request_id=request_id, to=to,
        )

    # -- decommission / revival ----------------------------------------------

    def mark_dead(self, target: str) -> None:
        """Decommission ``target``: its breaker goes DEAD (no traffic,
        no cooldown-driven half-open) until :meth:`revive`."""
        self.breaker(target).mark_dead()

    def revive(self, target: str, cooldown_s: float = 0.0) -> None:
        """Re-admit a revived domain through half-open probing."""
        self.breaker(target).revive(cooldown_s)

    def dead_targets(self) -> List[str]:
        """Decommissioned targets, sorted."""
        return sorted(
            target
            for target, breaker in self._breakers.items()
            if breaker.state is BreakerState.DEAD
        )

    # -- queries -------------------------------------------------------------

    def open_targets(self) -> List[str]:
        """Targets whose breaker is OPEN or HALF_OPEN, sorted.

        Terminal ``DEAD`` breakers are *not* open: a decommissioned
        domain is not recoverable traffic-steering state, and conflating
        the two made ``summary()["open"]`` (and the report CLI) claim a
        dead card might come back on its own. Dead targets are reported
        separately via :meth:`dead_targets`.
        """
        return sorted(
            target
            for target, breaker in self._breakers.items()
            if breaker.state
            not in (BreakerState.CLOSED, BreakerState.DEAD)
        )

    def summary(self) -> Dict[str, object]:
        """Deterministic control-plane digest for reports/examples."""
        return {
            "transitions": self.transitions,
            "reroutes": self.reroutes,
            "open": self.open_targets(),
            "dead": self.dead_targets(),
            "health": self.monitor.summary(),
        }
