"""Permanent-failure execution: detect → decommission → drain → rescue
→ re-admit.

:class:`DomainManager` is the runtime half of a
:class:`~repro.faults.domains.CrashPlan`. Armed on a
:class:`~repro.core.system.DMXSystem` (the ``domains=`` argument), it:

* **schedules** each crash (and optional revival) as a DES callback and
  broadcasts it through a per-target crash :class:`~repro.sim.Event`
  that every in-flight leg on that target races;
* **drains** — the leg race loses to the crash event, the leg's child
  process is cancelled via the engine's interrupt machinery (its
  ``finally`` blocks release every held slot), and the typed
  :class:`~repro.faults.domains.DomainCrashed` surfaces in the motion
  body;
* **detects** — each observed crash failure escalates a per-target
  consecutive-failure count; at ``detect_after_failures`` the target is
  decommissioned: its breaker is promoted to the DEAD state, the
  placement tables and the :class:`~repro.backends.planner.LegPlanner`
  candidate set stop offering it, and a ``domain_dead`` instant records
  the detection latency;
* **rescues** — the drained leg is resubmitted *exactly once* on the
  unconditionally-surviving CPU backend with its already-burned latency
  carried (re-billed to the recovery phase, like the deadline-fallback
  path), or failed with a typed
  :class:`~repro.faults.domains.RescueAbandoned` when past the plan's
  rescue deadline;
* **re-admits** — a revival flips the breaker DEAD → OPEN with a zero
  cooldown, so traffic returns through the normal half-open probing.

Everything is deterministic: the crash schedule is data, the broadcast
event is ordinary DES machinery, and no randomness is drawn. A plan
with no crashes arms nothing at all — the system constructor skips the
manager entirely, keeping crash-free runs byte-identical to unarmed
ones.

:func:`run_recovery_scenario` is the experiment driver on top: one
serving run with a mid-run kill (and optional revival), windowed
goodput queries for the before/after/revived comparison, and the
conservation invariant checker run automatically on the artifact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.chain import AppChain
from ..core.placement import Mode, SystemConfig
from ..core.system import DMXSystem, RequestRecord
from ..faults import FaultPlan
from ..faults.domains import CrashPlan, DomainCrash
from ..serve.arrivals import make_arrivals
from ..serve.batching import BatchingConfig
from ..serve.frontend import (
    Discipline,
    FrontendConfig,
    ServingFrontend,
    ShedPolicy,
    TenantSpec,
)
from ..serve.slo import ServeResult
from .control import ResilienceConfig

__all__ = [
    "DomainManager",
    "RecoveryScenarioConfig",
    "RecoveryScenarioResult",
    "run_recovery_scenario",
]


class DomainManager:
    """Executes one :class:`CrashPlan` against a live ``DMXSystem``.

    Constructed only when the plan has crashes (an empty plan arms
    nothing); schedules every crash/revival at construction time, so it
    must be built before the simulator runs.
    """

    def __init__(self, system: "DMXSystem", plan: CrashPlan):
        self.system = system
        self.sim = system.sim
        self.telemetry = system.telemetry
        self.plan = plan
        #: target -> crash instant (permanent record, survives revival).
        self.crashed_at: Dict[str, float] = {}
        #: target -> decommission (detection) instant.
        self.dead_at: Dict[str, float] = {}
        #: target -> revival instant.
        self.revived_at: Dict[str, float] = {}
        self._down: set = set()           # ground truth: currently crashed
        self._decommissioned: set = set()  # detected: routing excludes these
        self._events: Dict[str, object] = {}  # per-target crash broadcast
        self._failures: Dict[str, int] = {}
        self.drained = 0        # in-flight legs cancelled at crash time
        self.failed_fast = 0    # dispatches refused on an undetected corpse
        self.rescued = 0        # members resubmitted on a surviving backend
        self.rescues_abandoned = 0
        for crash in plan.crashes:
            self._events[crash.target] = self.sim.event()
            self.sim.schedule(
                crash.at_s - self.sim.now,
                lambda c=crash: self._crash(c),
            )
            if crash.revive_at_s is not None:
                self.sim.schedule(
                    crash.revive_at_s - self.sim.now,
                    lambda c=crash: self._revive(c),
                )

    # -- the crash/revival schedule ------------------------------------------

    def _crash(self, crash: DomainCrash) -> None:
        target = crash.target
        self.crashed_at[target] = self.sim.now
        self._down.add(target)
        # The broadcast: every leg racing this event is drained at this
        # instant; legs dispatched afterwards fail fast on it.
        self._events[target].succeed()
        if self.telemetry.enabled:
            self.telemetry.instant(
                "domain_crashed", "domain", actor=target,
                revive_at_s=crash.revive_at_s,
            )

    def _revive(self, crash: DomainCrash) -> None:
        target = crash.target
        self._down.discard(target)
        self._decommissioned.discard(target)
        self._events.pop(target, None)
        self._failures.pop(target, None)
        self.revived_at[target] = self.sim.now
        if self.telemetry.enabled:
            self.telemetry.instant("domain_revived", "domain", actor=target)
        control = self.system.control
        if control is not None and target in self.dead_at:
            # Back through the front door: DEAD -> OPEN with zero
            # cooldown, so the next dispatch half-opens and probes.
            control.revive(target, cooldown_s=0.0)

    # -- dispatch-side queries -----------------------------------------------

    def watch(self, target: str):
        """The target's crash event for a leg race (None when no crash
        is pending or the domain already came back)."""
        return self._events.get(target)

    def is_down(self, target: str) -> bool:
        """Detected-dead (decommissioned): routing and planning must not
        offer this target. Ground-truth crashes are *not* enough —
        before detection, legs still dispatch and fail fast, which is
        what drives the consecutive-failure escalation."""
        return target in self._decommissioned

    def is_crashed(self, target: str) -> bool:
        """Ground truth: the domain is currently dead."""
        return target in self._down

    # -- failure observations → detection ------------------------------------

    def observe_crash_failure(
        self, target: str, request_id: int, count: int, inflight: bool
    ) -> None:
        """One leg observed the domain dead (drained in-flight, or
        failed fast at dispatch). Escalates toward decommission."""
        if inflight:
            self.drained += count
        else:
            self.failed_fast += count
        if self.telemetry.enabled:
            self.telemetry.instant(
                "domain_drain", "domain", actor=target,
                request_id=request_id, batch=count, inflight=inflight,
            )
        if target not in self._down or target in self._decommissioned:
            return
        failures = self._failures.get(target, 0) + 1
        self._failures[target] = failures
        if failures >= self.plan.detect_after_failures:
            self._decommission(target)

    def _decommission(self, target: str) -> None:
        now = self.sim.now
        self._decommissioned.add(target)
        self.dead_at[target] = now
        detect_s = now - self.crashed_at[target]
        if self.telemetry.enabled:
            self.telemetry.instant(
                "domain_dead", "domain", actor=target, detect_s=detect_s,
            )
            self.telemetry.counter("domain_decommissions").inc()
        control = self.system.control
        if control is not None:
            control.mark_dead(target)

    # -- rescue accounting ---------------------------------------------------

    def past_rescue_deadline(self, burned_s: float) -> bool:
        deadline = self.plan.rescue_deadline_s
        return deadline is not None and burned_s > deadline

    def on_rescue(
        self, target: str, request_id: int, burned_s: float, count: int
    ) -> None:
        self.rescued += count
        if self.telemetry.enabled:
            self.telemetry.instant(
                "domain_rescue", "domain", actor=target,
                request_id=request_id, burned_s=burned_s, batch=count,
                to="cpu",
            )
            self.telemetry.counter("domain_rescues", target=target).inc(count)

    def on_rescue_abandoned(
        self, target: str, request_id: int, burned_s: float, count: int
    ) -> None:
        self.rescues_abandoned += count
        if self.telemetry.enabled:
            self.telemetry.instant(
                "domain_rescue_abandoned", "domain", actor=target,
                request_id=request_id, burned_s=burned_s, batch=count,
            )

    # -- reporting -----------------------------------------------------------

    def detect_latency_s(self, target: str) -> Optional[float]:
        """Crash → decommission latency, None if never detected."""
        if target not in self.dead_at:
            return None
        return self.dead_at[target] - self.crashed_at[target]

    def summary(self) -> Dict[str, object]:
        """Deterministic digest for reports, demos, and tests."""
        return {
            "crashed": sorted(self.crashed_at),
            "decommissioned": sorted(self.dead_at),
            "revived": sorted(self.revived_at),
            "detect_latency_s": {
                target: self.detect_latency_s(target)
                for target in sorted(self.dead_at)
            },
            "drained": self.drained,
            "failed_fast": self.failed_fast,
            "rescued": self.rescued,
            "rescues_abandoned": self.rescues_abandoned,
        }


# -- the kill-a-card-mid-run experiment ---------------------------------------


@dataclass(frozen=True)
class RecoveryScenarioConfig:
    """One serving run with permanent failures injected mid-flight.

    ``offered_rps`` is aggregate load split evenly across ``n_tenants``
    tenant chains; ``crashes`` is the kill schedule (targets are
    dispatch names like ``"drx.s0"``). ``artifact_path`` writes the
    run's telemetry artifact and — with ``verify=True`` — runs the
    conservation invariant checker on it, raising
    :class:`~repro.resilience.invariants.InvariantViolation` on any
    problem (every recovery sweep self-checks its own books).
    """

    offered_rps: float
    crashes: Tuple[DomainCrash, ...]
    n_tenants: int = 4
    requests_per_tenant: int = 50
    detect_after_failures: int = 1
    rescue_deadline_s: Optional[float] = None
    mode: Mode = Mode.STANDALONE
    benchmark: str = "sound-detection"
    chain_factory: Optional[Callable[[], List[AppChain]]] = None
    arrival_kind: str = "poisson"
    seed: int = 0
    slo_s: float = 50e-3
    max_inflight: int = 8
    queue_capacity: int = 256
    discipline: Discipline = Discipline.FCFS
    faults: Optional[FaultPlan] = None
    resilience: Optional[ResilienceConfig] = field(
        default_factory=ResilienceConfig
    )
    batching: Optional[BatchingConfig] = None
    artifact_path: Optional[str] = None
    verify: bool = True

    def __post_init__(self) -> None:
        if self.offered_rps <= 0:
            raise ValueError("offered_rps must be positive")
        if self.n_tenants <= 0:
            raise ValueError("n_tenants must be positive")
        if self.requests_per_tenant <= 0:
            raise ValueError("requests_per_tenant must be positive")

    def build_chains(self) -> List[AppChain]:
        if self.chain_factory is not None:
            return self.chain_factory()
        from ..workloads import build_benchmark_chains

        return build_benchmark_chains(self.benchmark, self.n_tenants)

    def crash_plan(self) -> CrashPlan:
        return CrashPlan(
            seed=self.seed,
            crashes=self.crashes,
            detect_after_failures=self.detect_after_failures,
            rescue_deadline_s=self.rescue_deadline_s,
        )


@dataclass
class RecoveryScenarioResult:
    """One scenario's outcome, with windowed goodput queries."""

    serve: ServeResult
    domains: Dict[str, object]
    detect_latency_s: Dict[str, Optional[float]]
    artifact_path: Optional[str] = None

    @property
    def records(self) -> List[RequestRecord]:
        return self.serve.records

    def goodput_between(self, start_s: float, end_s: float) -> float:
        """Successfully answered requests per second completing within
        ``[start_s, end_s)`` of sim time — the windowed view the
        kill/recover comparison needs."""
        if end_s <= start_s:
            raise ValueError("window must have positive width")
        completed = sum(
            1
            for r in self.serve.records
            if not r.failed and start_s <= r.end < end_s
        )
        return completed / (end_s - start_s)

    def rescued_count(self) -> int:
        return sum(1 for r in self.serve.records if r.rescued)


def run_recovery_scenario(
    config: RecoveryScenarioConfig,
) -> RecoveryScenarioResult:
    """Run one crash-mid-run serving experiment end to end."""
    chains = config.build_chains()
    system = DMXSystem(
        chains,
        SystemConfig(mode=config.mode),
        faults=config.faults,
        resilience=config.resilience,
        domains=config.crash_plan(),
    )
    per_tenant = config.offered_rps / len(chains)
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=make_arrivals(config.arrival_kind, per_tenant),
            n_requests=config.requests_per_tenant,
            queue_capacity=config.queue_capacity,
        )
        for chain in chains
    ]
    frontend = ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=config.max_inflight,
            shed=ShedPolicy.QUEUE,
            discipline=config.discipline,
            slo_s=config.slo_s,
            batching=config.batching,
        ),
        seed=config.seed,
    )
    serve = frontend.run()
    manager = system.domains
    summary = manager.summary() if manager is not None else {}
    detect = (
        {t: manager.detect_latency_s(t) for t in sorted(manager.crashed_at)}
        if manager is not None
        else {}
    )
    if config.artifact_path is not None:
        from ..telemetry import write_artifact

        directory = os.path.dirname(config.artifact_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        write_artifact(
            config.artifact_path,
            serve.telemetry,
            meta={
                "offered_rps": config.offered_rps,
                "seed": config.seed,
                "slo_s": config.slo_s,
                "mode": config.mode.value,
                "crashes": [
                    {
                        "target": c.target,
                        "at_s": c.at_s,
                        "revive_at_s": c.revive_at_s,
                    }
                    for c in config.crashes
                ],
            },
        )
        if config.verify:
            from .invariants import verify_artifact_path

            verify_artifact_path(config.artifact_path).raise_on_problems()
    return RecoveryScenarioResult(
        serve=serve,
        domains=summary,
        detect_latency_s=detect,
        artifact_path=config.artifact_path,
    )
