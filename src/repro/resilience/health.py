"""Windowed health scores per target (DRX unit, accelerator, link).

The health monitor is the *sensing* half of the resilience control
plane: every DRX-leg outcome — success, or a recoverable failure
(deadline blown, injected fault, retries exhausted) — is recorded per
**target** into a bounded sliding window, and simultaneously folded
into the shared metrics registry:

* ``drx_outcomes{target=..., ok=...}`` counters,
* a ``health_score{target=...}`` gauge timeline on the sim clock,
* a ``drx_leg_latency{target=...}`` histogram of leg service times,

so run artifacts and ``python -m repro.telemetry`` reports see exactly
the signals the circuit breakers acted on.

Health is the success fraction over the last ``window`` observations —
1.0 for a target that has never been exercised (innocent until proven
sick). The window is deliberately small: the point is to react within a
handful of requests; the breaker layers its own hysteresis (minimum
observations, cooldown backoff, fresh window on close) on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

__all__ = ["HealthConfig", "HealthMonitor"]


@dataclass(frozen=True)
class HealthConfig:
    """Sliding-window sizing for health scoring."""

    window: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")


class HealthMonitor:
    """Per-target sliding windows of operation outcomes.

    ``telemetry=None`` (or a disabled telemetry) keeps the monitor fully
    functional for the breakers while skipping registry publication —
    the configuration unit tests use it bare.
    """

    def __init__(
        self,
        telemetry: Optional["Telemetry"] = None,
        config: HealthConfig = HealthConfig(),
    ):
        self.config = config
        self._telemetry = (
            telemetry
            if telemetry is not None and telemetry.enabled
            else None
        )
        self._windows: Dict[str, Deque[bool]] = {}
        self._ok_counters: Dict[str, object] = {}
        self._fail_counters: Dict[str, object] = {}
        self._latency_hists: Dict[str, object] = {}

    # -- recording -----------------------------------------------------------

    def record(
        self, target: str, ok: bool, latency_s: Optional[float] = None
    ) -> None:
        """Fold one operation outcome on ``target`` into its window."""
        window = self._windows.get(target)
        if window is None:
            window = deque(maxlen=self.config.window)
            self._windows[target] = window
        window.append(ok)
        t = self._telemetry
        if t is None:
            return
        counters = self._ok_counters if ok else self._fail_counters
        counter = counters.get(target)
        if counter is None:
            counter = t.counter(
                "drx_outcomes", target=target, ok="true" if ok else "false"
            )
            counters[target] = counter
        counter.inc()
        t.sample_gauge("health_score", self.health(target), target=target)
        if latency_s is not None:
            hist = self._latency_hists.get(target)
            if hist is None:
                hist = t.histogram("drx_leg_latency", target=target)
                self._latency_hists[target] = hist
            hist.observe(latency_s)

    def reset(self, target: str) -> None:
        """Forget a target's window (a breaker closing turns the page:
        stale failures can no longer contribute to a re-trip)."""
        window = self._windows.get(target)
        if window is not None:
            window.clear()
        if self._telemetry is not None:
            self._telemetry.sample_gauge("health_score", 1.0, target=target)

    # -- queries -------------------------------------------------------------

    def health(self, target: str) -> float:
        """Success fraction over the target's window (1.0 if unseen)."""
        window = self._windows.get(target)
        if not window:
            return 1.0
        return sum(window) / len(window)

    def failure_fraction(self, target: str) -> float:
        return 1.0 - self.health(target)

    def observations(self, target: str) -> int:
        """Outcomes currently in the window (saturates at ``window``)."""
        window = self._windows.get(target)
        return len(window) if window is not None else 0

    def targets(self) -> List[str]:
        """Targets seen so far, in deterministic (sorted) order."""
        return sorted(self._windows)

    def summary(self) -> Dict[str, float]:
        """Current health per target (for reports and examples)."""
        return {target: self.health(target) for target in self.targets()}
