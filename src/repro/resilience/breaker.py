"""Circuit breakers over DRX dispatch: closed / open / half-open / dead.

A :class:`CircuitBreaker` guards one dispatch target (one DRX unit).
In ``CLOSED`` state traffic flows; when the target's windowed failure
fraction (from the shared :class:`~repro.resilience.health.HealthMonitor`)
crosses the threshold — with a minimum number of observations, so one
unlucky request cannot trip it — the breaker ``OPEN``\\ s and the system
routes around the target *without* burning per-request deadline budget.
After a cooldown the breaker goes ``HALF_OPEN`` and admits a single
**probe** request at a time; enough consecutive probe successes close
it, one probe failure re-opens it with an exponentially longer cooldown.

Hysteresis against flapping comes from three places:

* a trip requires ``min_observations`` outcomes in the window, and
  closing resets the window — so a freshly closed breaker needs a fresh
  body of evidence to re-open;
* re-trips back off: each consecutive open multiplies the cooldown
  (``cooldown_multiplier``, capped);
* only one probe is in flight at a time, and ``probe_successes``
  consecutive successes are needed to close.

Probes are *seeded deterministic*: the optional cooldown jitter draws
from a per-breaker ``random.Random``, so equal-seed runs replay
byte-identically (the same determinism contract as the fault injector).

The breaker only needs a ``.now`` attribute from its clock, so unit
tests drive it with a plain object; in the system it reads the DES
simulator directly.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Tuple

from .health import HealthMonitor

__all__ = ["BreakerState", "BreakerConfig", "BreakerDecision",
           "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"
    #: Decommissioned: the target's failure domain crashed. Unlike OPEN,
    #: DEAD never half-opens on a cooldown — only an explicit
    #: :meth:`CircuitBreaker.revive` (the domain coming back) re-admits
    #: it, and it does so through the normal half-open probe path.
    DEAD = "dead"


class BreakerDecision(NamedTuple):
    """Outcome of :meth:`CircuitBreaker.allow` for one dispatch."""

    allow: bool
    probe: bool


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold, cooldown schedule, and probe policy.

    ``failure_threshold`` is the windowed *failure fraction* at which a
    closed breaker trips (once ``min_observations`` outcomes are in the
    window). ``cooldown_s`` is the first open period; consecutive opens
    multiply it by ``cooldown_multiplier`` up to ``cooldown_cap_s``.
    ``jitter`` adds a seeded fractional perturbation to each cooldown
    (0 disables it; determinism holds either way — the draw comes from
    the breaker's own seeded rng).
    """

    failure_threshold: float = 0.5
    min_observations: int = 4
    cooldown_s: float = 25e-3
    cooldown_multiplier: float = 2.0
    cooldown_cap_s: float = 400e-3
    probe_successes: int = 2
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if self.cooldown_multiplier < 1.0:
            raise ValueError("cooldown_multiplier must be >= 1")
        if self.cooldown_cap_s < self.cooldown_s:
            raise ValueError("cooldown_cap_s must be >= cooldown_s")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


class CircuitBreaker:
    """One target's breaker state machine.

    ``on_transition(breaker, old, new)`` fires on every state change
    (the control plane uses it for telemetry instants and counters).
    """

    def __init__(
        self,
        clock,
        target: str,
        monitor: HealthMonitor,
        config: BreakerConfig = BreakerConfig(),
        rng: Optional[random.Random] = None,
        on_transition: Optional[
            Callable[["CircuitBreaker", BreakerState, BreakerState], None]
        ] = None,
    ):
        self.clock = clock
        self.target = target
        self.monitor = monitor
        self.config = config
        self._rng = rng
        self._on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.open_until = 0.0
        #: (time, new state) history — deterministic, test- and
        #: report-friendly.
        self.transitions: List[Tuple[float, BreakerState]] = []
        self.trips = 0
        self._consecutive_opens = 0
        self._probe_ok = 0
        self._probe_inflight = False

    # -- state machine -------------------------------------------------------

    def _transition(self, new: BreakerState) -> None:
        old = self.state
        self.state = new
        self.transitions.append((self.clock.now, new))
        if self._on_transition is not None:
            self._on_transition(self, old, new)

    def _cooldown(self) -> float:
        cfg = self.config
        cooldown = min(
            cfg.cooldown_s * cfg.cooldown_multiplier ** self._consecutive_opens,
            cfg.cooldown_cap_s,
        )
        if cfg.jitter > 0.0 and self._rng is not None:
            cooldown *= 1.0 + cfg.jitter * self._rng.random()
        return cooldown

    def _trip(self, cooldown_s: Optional[float] = None) -> None:
        self.trips += 1
        self.open_until = self.clock.now + (
            self._cooldown() if cooldown_s is None else cooldown_s
        )
        self._consecutive_opens += 1
        self._probe_ok = 0
        self._probe_inflight = False
        self._transition(BreakerState.OPEN)

    def _close(self) -> None:
        self._consecutive_opens = 0
        self._probe_ok = 0
        self._probe_inflight = False
        # Turn the page: a freshly closed breaker needs fresh evidence
        # (>= min_observations new outcomes) before it can re-open.
        self.monitor.reset(self.target)
        self._transition(BreakerState.CLOSED)

    # -- the dispatch-side API -----------------------------------------------

    def allow(self) -> BreakerDecision:
        """May a request dispatch to this target right now?

        Closed: yes. Open: no until the cooldown elapses, at which point
        the breaker half-opens. Half-open: one probe at a time.
        """
        if self.state is BreakerState.DEAD:
            return BreakerDecision(False, False)
        if self.state is BreakerState.OPEN:
            if self.clock.now < self.open_until:
                return BreakerDecision(False, False)
            self._transition(BreakerState.HALF_OPEN)
        if self.state is BreakerState.HALF_OPEN:
            if self._probe_inflight:
                return BreakerDecision(False, False)
            self._probe_inflight = True
            return BreakerDecision(True, True)
        return BreakerDecision(True, False)

    def record(
        self,
        ok: bool,
        latency_s: Optional[float] = None,
        probe: bool = False,
    ) -> None:
        """Fold one dispatch outcome back into the breaker.

        ``probe`` must echo the :class:`BreakerDecision` that admitted
        the dispatch, so a straggler admitted before a trip cannot be
        mistaken for the half-open probe's verdict.
        """
        self.monitor.record(self.target, ok, latency_s)
        if self.state is BreakerState.DEAD:
            # Stragglers admitted before the decommission still report;
            # their outcomes inform health but cannot transition a dead
            # breaker — only revive() can.
            return
        if probe and self.state is BreakerState.HALF_OPEN:
            self._probe_inflight = False
            if ok:
                self._probe_ok += 1
                if self._probe_ok >= self.config.probe_successes:
                    self._close()
            else:
                self._trip()
            return
        if self.state is BreakerState.CLOSED and not ok:
            cfg = self.config
            if (
                self.monitor.observations(self.target) >= cfg.min_observations
                and self.monitor.failure_fraction(self.target)
                >= cfg.failure_threshold
            ):
                self._trip()

    def force_open(self, cooldown_s: Optional[float] = None) -> None:
        """Operator hook: open the breaker now regardless of health
        (drain a unit for maintenance; also the deterministic lever the
        system tests pull). ``cooldown_s`` overrides the schedule."""
        if self.state is BreakerState.DEAD:
            return
        if self.state is not BreakerState.OPEN:
            self._trip(cooldown_s=cooldown_s)
        elif cooldown_s is not None:
            self.open_until = self.clock.now + cooldown_s

    # -- decommission / revival ----------------------------------------------

    def mark_dead(self) -> None:
        """Decommission the target: no traffic, no cooldown-driven
        half-open. Idempotent."""
        if self.state is BreakerState.DEAD:
            return
        self.trips += 1
        self._probe_ok = 0
        self._probe_inflight = False
        self.open_until = float("inf")
        self._transition(BreakerState.DEAD)

    def revive(self, cooldown_s: float = 0.0) -> None:
        """Re-admit a revived domain *through half-open probing*: the
        breaker moves DEAD → OPEN with an (optionally zero) cooldown, so
        the next :meth:`allow` half-opens and sends a single probe; only
        ``probe_successes`` consecutive probe wins close it. The health
        window is reset — a revived domain starts from fresh evidence."""
        if self.state is not BreakerState.DEAD:
            return
        self.monitor.reset(self.target)
        self._consecutive_opens = 0
        self._probe_ok = 0
        self._probe_inflight = False
        self.open_until = self.clock.now + cooldown_s
        self._transition(BreakerState.OPEN)
