"""Post-hoc conservation invariants over run artifacts.

Chaos and recovery sweeps generate runs where requests are shed,
drained, rescued, abandoned, and re-admitted — exactly the conditions
under which subtle accounting bugs (a request counted twice, a span
billed to a dead domain, occupancy double-counted across a rescue) slip
into results unnoticed. This module proves, from the schema-2 artifact
alone, that the books balance:

* **C1 conservation** — per tenant, ``arrivals == admitted + shed``
  (the admission-side counters), and every admitted request is
  accounted *exactly once*: the number of client spans equals the
  admitted count, and each is either completed or typed-failed
  (``completed ⊕ failed``); shedding happens strictly before admission.
* **C2 containment** — every span lies inside its parent's extent
  (client spans under a batch span are exempt at the start edge: a
  member can arrive before its batch opens).
* **C3 phase tiling** — a completed request span's extent is exactly
  tiled by its phase-carrying children (kernel spans + motion-stage
  spans), to 1e-9; batch-exec spans likewise (member kernels + shared
  stage spans). Abandoned subtrees do not count — that is precisely how
  burned time is kept out of phase totals and re-billed to recovery.
* **C4 decommission** — no span starts on a failure domain after its
  ``domain_dead`` instant (until ``domain_revived``): a decommissioned
  domain serves no new work.
* **C5 rescue exactly-once** — a rescued request carries at least one
  abandoned attempt subtree (the drained leg), and no motion stage has
  more than one live restructuring execution — the rescue replaces the
  drained leg, it never double-counts device occupancy.

:func:`verify_artifact` runs every applicable check and returns an
:class:`InvariantReport`; ``python -m repro.telemetry verify RUN.jsonl``
is the CLI spelling, and every chaos/recovery sweep that writes an
artifact re-verifies it automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..telemetry.artifact import RunArtifact, load_artifact
from ..telemetry.spans import Span

__all__ = [
    "InvariantViolation",
    "InvariantReport",
    "verify_artifact",
    "verify_artifact_path",
]

_TOL = 1e-9


class InvariantViolation(AssertionError):
    """An artifact failed conservation checking; ``problems`` lists
    every violated invariant (the report fails loudly, not lazily)."""

    def __init__(self, path: str, problems: List[str]):
        detail = "\n".join(f"  - {p}" for p in problems)
        super().__init__(
            f"artifact {path or '<in-memory>'} violates "
            f"{len(problems)} invariant(s):\n{detail}"
        )
        self.path = path
        self.problems = problems


@dataclass
class InvariantReport:
    """Outcome of one verification pass."""

    path: str
    problems: List[str] = field(default_factory=list)
    #: Checks that ran (C1..C5 keys -> number of subjects examined).
    checked: Dict[str, int] = field(default_factory=dict)
    #: Checks skipped, with the reason (e.g. sampling armed).
    skipped: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_on_problems(self) -> "InvariantReport":
        if self.problems:
            raise InvariantViolation(self.path, self.problems)
        return self

    def render(self) -> str:
        lines = [f"invariants: {self.path or '<in-memory>'}"]
        for name in sorted(self.checked):
            lines.append(f"  {name}: OK ({self.checked[name]} subjects)")
        for name, why in sorted(self.skipped.items()):
            lines.append(f"  {name}: skipped ({why})")
        if self.problems:
            lines.append(f"  FAILED: {len(self.problems)} violation(s)")
            for problem in self.problems:
                lines.append(f"    - {problem}")
        else:
            lines.append("  PASS")
        return "\n".join(lines)


def _duration(span: Span) -> float:
    return (span.end if span.end is not None else span.start) - span.start


def _abandoned(span: Span) -> bool:
    return bool(span.attrs.get("abandoned")) or bool(
        span.attrs.get("truncated")
    )


class _Tree:
    """Index of one artifact's span forest."""

    def __init__(self, artifact: RunArtifact):
        self.spans = artifact.spans
        self.by_id: Dict[int, Span] = {s.span_id: s for s in artifact.spans}
        self.children: Dict[int, List[Span]] = {}
        for span in artifact.spans:
            if span.parent_id in self.by_id:
                self.children.setdefault(span.parent_id, []).append(span)

    def kids(self, span: Span) -> List[Span]:
        return self.children.get(span.span_id, [])

    def subtree(self, span: Span) -> List[Span]:
        out: List[Span] = []
        stack = [span]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(self.kids(node))
        return out


def _tenant_counters(artifact: RunArtifact, name: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for (cname, labels), value in artifact.counters.items():
        if cname != name:
            continue
        tenant = dict(labels).get("tenant")
        if tenant is not None:
            out[tenant] = value
    return out


def _check_conservation(
    artifact: RunArtifact, tree: _Tree, report: InvariantReport
) -> None:
    arrivals = _tenant_counters(artifact, "arrivals")
    if not arrivals:
        report.skipped["C1-conservation"] = "no admission counters"
        return
    admitted = _tenant_counters(artifact, "admitted")
    shed = _tenant_counters(artifact, "shed")
    clients: Dict[str, List[Span]] = {}
    for span in tree.spans:
        if span.category == "client":
            tenant = str(span.attrs.get("tenant", span.actor))
            clients.setdefault(tenant, []).append(span)
    sampled = artifact.sampling is not None
    checked = 0
    for tenant in sorted(arrivals):
        checked += 1
        a = arrivals.get(tenant, 0.0)
        adm = admitted.get(tenant, 0.0)
        s = shed.get(tenant, 0.0)
        if a != adm + s:
            report.problems.append(
                f"C1: tenant {tenant!r}: arrivals={a:g} != "
                f"admitted={adm:g} + shed={s:g}"
            )
        if sampled:
            continue
        spans = clients.get(tenant, [])
        if len(spans) != int(adm):
            report.problems.append(
                f"C1: tenant {tenant!r}: {len(spans)} client spans for "
                f"{adm:g} admitted requests (each admitted request must "
                f"be accounted exactly once)"
            )
        open_spans = [s2 for s2 in spans if s2.end is None]
        if open_spans:
            report.problems.append(
                f"C1: tenant {tenant!r}: {len(open_spans)} client "
                f"span(s) never completed"
            )
    report.checked["C1-conservation"] = checked
    if sampled:
        report.skipped["C1-span-count"] = "trace sampling armed"


def _check_containment(tree: _Tree, report: InvariantReport) -> None:
    checked = 0
    for span in tree.spans:
        parent = tree.by_id.get(span.parent_id)
        if parent is None:
            continue
        checked += 1
        # A batch member can arrive (client span start) before its
        # batch span opened; every other child starts inside its parent.
        if span.category != "client" and span.start < parent.start - _TOL:
            report.problems.append(
                f"C2: span {span.span_id} ({span.name!r}) starts "
                f"{span.start:.9f} before parent {parent.span_id} "
                f"({parent.name!r}) at {parent.start:.9f}"
            )
        if (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end + _TOL
        ):
            report.problems.append(
                f"C2: span {span.span_id} ({span.name!r}) ends "
                f"{span.end:.9f} after parent {parent.span_id} "
                f"({parent.name!r}) at {parent.end:.9f}"
            )
    report.checked["C2-containment"] = checked


def _phase_children(tree: _Tree, span: Span) -> List[Span]:
    """Direct children that carry billable time: kernel/phase spans and
    motion-stage spans (whose own subtree holds the phase detail)."""
    return [
        child
        for child in tree.kids(span)
        if not _abandoned(child)
        and (child.phase or child.category == "stage")
        and child.category not in ("request", "client", "queue")
    ]


def _check_tiling(tree: _Tree, report: InvariantReport) -> None:
    checked = 0
    for span in tree.spans:
        if _abandoned(span) or span.end is None:
            continue
        if span.attrs.get("failed"):
            continue  # failed requests legitimately contain dead time
        if span.category == "request":
            if span.attrs.get("batched"):
                continue  # members share the batch-exec span's work
        elif span.category != "batch-exec":
            continue
        kids = _phase_children(tree, span)
        member_kernels: List[Span] = []
        if span.category == "batch-exec":
            for member in tree.kids(span):
                if member.category == "request":
                    member_kernels.extend(_phase_children(tree, member))
        covered = sum(_duration(k) for k in kids + member_kernels)
        extent = _duration(span)
        checked += 1
        if abs(extent - covered) > _TOL:
            report.problems.append(
                f"C3: {span.category} span {span.span_id} "
                f"({span.name!r}): extent {extent:.9f} != phase "
                f"coverage {covered:.9f} (|Δ|="
                f"{abs(extent - covered):.3e})"
            )
    report.checked["C3-phase-tiling"] = checked


def _domain_windows(
    artifact: RunArtifact,
) -> Dict[str, Tuple[float, float]]:
    """target -> (decommissioned-at, revived-at) windows."""
    dead: Dict[str, float] = {}
    revived: Dict[str, float] = {}
    for instant in artifact.instants:
        if instant.name == "domain_dead":
            dead[instant.actor] = instant.time
        elif instant.name == "domain_revived":
            revived[instant.actor] = instant.time
    return {
        target: (at, revived.get(target, float("inf")))
        for target, at in dead.items()
    }


def _check_decommission(
    artifact: RunArtifact, tree: _Tree, report: InvariantReport
) -> None:
    windows = _domain_windows(artifact)
    if not windows:
        report.skipped["C4-decommission"] = "no decommissioned domains"
        return
    checked = 0
    for span in tree.spans:
        window = windows.get(span.actor)
        if window is None:
            continue
        checked += 1
        dead_at, revived_at = window
        if dead_at + _TOL < span.start < revived_at:
            report.problems.append(
                f"C4: span {span.span_id} ({span.name!r}) starts on "
                f"{span.actor!r} at {span.start:.9f}, after its "
                f"decommission at {dead_at:.9f}"
            )
    report.checked["C4-decommission"] = checked


def _check_rescue(tree: _Tree, report: InvariantReport) -> None:
    rescued = [
        s
        for s in tree.spans
        if s.category in ("request", "batch-exec") and s.attrs.get("rescued")
    ]
    checked = 0
    for span in rescued:
        checked += 1
        subtree = tree.subtree(span)
        drained = [
            s
            for s in subtree
            if s.category == "attempt" and _abandoned(s)
        ]
        if not drained:
            report.problems.append(
                f"C5: rescued span {span.span_id} ({span.name!r}) has "
                f"no abandoned attempt subtree — nothing was drained, "
                f"so what was rescued?"
            )
        for stage in subtree:
            if stage.category != "stage" or _abandoned(stage):
                continue
            live = [
                s
                for s in tree.subtree(stage)
                if s.phase == "restructuring" and not _abandoned(s)
            ]
            if len(live) > 1:
                report.problems.append(
                    f"C5: stage span {stage.span_id} ({stage.name!r}) "
                    f"under rescued span {span.span_id} has "
                    f"{len(live)} live restructuring executions — "
                    f"occupancy double-counted"
                )
    report.checked["C5-rescue"] = checked


def verify_artifact(
    artifact: Union[RunArtifact, str],
    path: str = "",
) -> InvariantReport:
    """Run every applicable invariant over ``artifact``.

    Accepts a loaded :class:`RunArtifact` or a path. Returns the
    report; call :meth:`InvariantReport.raise_on_problems` (or check
    ``report.ok``) to act on it.
    """
    if isinstance(artifact, str):
        path = path or artifact
        artifact = load_artifact(artifact)
    report = InvariantReport(path=path)
    tree = _Tree(artifact)
    _check_conservation(artifact, tree, report)
    _check_containment(tree, report)
    _check_tiling(tree, report)
    _check_decommission(artifact, tree, report)
    _check_rescue(tree, report)
    return report


def verify_artifact_path(path: str) -> InvariantReport:
    """Load ``path`` and verify it (the sweep/CLI entry point)."""
    return verify_artifact(load_artifact(path), path=path)
