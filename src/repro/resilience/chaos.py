"""The chaos sweep: FaultPlan intensity × offered load → goodput cliff.

Open-loop faults at scale: :func:`run_chaos_sweep` crosses a grid of
fault intensities (a scalar multiplier on a base
:class:`~repro.faults.FaultPlan`'s injection probabilities) with a grid
of offered loads, running one full serving experiment per cell — with
and without the resilience control plane — and charts where **goodput
falls off a cliff**: the highest offered load a configuration sustains
while goodput stays at least ``goodput_floor`` of what was offered.

The mechanism the sweep exposes: without breakers, every request that
hits a sick DRX burns the full per-stage deadline budget while holding
a dispatch slot, so recovery work itself saturates the system and the
cliff arrives at low load. With the control plane, the first few
failures trip the unit's breaker and subsequent requests are steered
around it instantly — the same fault intensity costs a roughly constant
amount of recovery work instead of an amount proportional to traffic,
and the cliff moves right.

Everything is deterministic: equal-seed sweeps serialize to
byte-identical JSON (:meth:`ChaosSweepResult.to_json`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.chain import AppChain
from ..core.placement import Mode, SystemConfig
from ..core.system import DMXSystem
from ..faults import FaultPlan
from ..faults.injector import FaultPolicy
from ..serve.arrivals import make_arrivals
from ..serve.frontend import (
    Discipline,
    FrontendConfig,
    ServingFrontend,
    ShedPolicy,
    TenantSpec,
)
from ..serve.slo import ServeResult
from .brownout import BrownoutConfig
from .control import ResilienceConfig

__all__ = ["ChaosSweepConfig", "ChaosPoint", "ChaosSweepResult",
           "run_chaos_sweep", "run_chaos_cell", "scale_plan",
           "DEFAULT_CHAOS_PLAN"]

#: A base plan worth scaling: at intensity 1.0 half the DRX legs hang
#: (caught by the deadline watchdog) and DMA occasionally faults. The
#: tight ``drx_deadline_s`` is the recovery tax each un-breakered
#: request pays.
DEFAULT_CHAOS_PLAN = FaultPlan(
    seed=7,
    drx=FaultPolicy(hang_p=0.5),
    dma=FaultPolicy(fail_p=0.05),
    drx_deadline_s=30e-3,
)


def _scale_policy(policy: FaultPolicy, intensity: float) -> FaultPolicy:
    fail = policy.fail_p * intensity
    hang = policy.hang_p * intensity
    delay = policy.delay_p * intensity
    total = fail + hang + delay
    if total > 1.0:  # keep the policy a valid sub-distribution
        fail, hang, delay = fail / total, hang / total, delay / total
    return replace(policy, fail_p=fail, hang_p=hang, delay_p=delay)


def scale_plan(plan: FaultPlan, intensity: float) -> FaultPlan:
    """Scale every injection probability of ``plan`` by ``intensity``
    (clamped so each site's probabilities still sum to <= 1); timeouts,
    retry budgets, and the seed are untouched. ``intensity=0`` yields a
    plan that injects nothing but keeps the recovery plane armed."""
    if intensity < 0:
        raise ValueError("intensity must be >= 0")
    return replace(
        plan,
        dma=_scale_policy(plan.dma, intensity),
        drx=_scale_policy(plan.drx, intensity),
        kernel=_scale_policy(plan.kernel, intensity),
        fabric=_scale_policy(plan.fabric, intensity),
        notify=_scale_policy(plan.notify, intensity),
    )


@dataclass(frozen=True)
class ChaosSweepConfig:
    """One chaos experiment: loads × intensities × {baseline, resilient}.

    ``offered_loads_rps`` is the aggregate offered load per point, split
    evenly across ``n_tenants`` tenant chains (ascending, like
    :class:`~repro.serve.sweep.SweepConfig`). ``fault_intensities``
    scale ``base_plan`` via :func:`scale_plan`. ``control_plane`` is the
    pair of arms to run — ``(False, True)`` by default, proving the
    cliff shift. ``resilience`` configures the breakers for the
    resilient arm; ``brownout`` (optional) additionally arms the
    frontend's degradation ladder on that arm.

    ``artifact_dir`` writes each cell's telemetry as a run artifact
    (``{baseline|resilient}-i<intensity idx>-pt<load idx>.jsonl``) —
    deterministic names, byte-identical contents across equal seeds.
    """

    offered_loads_rps: Tuple[float, ...]
    fault_intensities: Tuple[float, ...] = (1.0,)
    base_plan: FaultPlan = DEFAULT_CHAOS_PLAN
    control_plane: Tuple[bool, ...] = (False, True)
    resilience: ResilienceConfig = ResilienceConfig()
    brownout: Optional[BrownoutConfig] = None
    mode: Mode = Mode.STANDALONE
    benchmark: str = "sound-detection"
    n_tenants: int = 2
    requests_per_tenant: int = 24
    arrival_kind: str = "poisson"
    seed: int = 0
    slo_s: float = 50e-3
    max_inflight: int = 8
    queue_capacity: int = 256
    discipline: Discipline = Discipline.FCFS
    sample_period_s: Optional[float] = 1e-3
    goodput_floor: float = 0.7
    chain_factory: Optional[Callable[[], List[AppChain]]] = None
    artifact_dir: Optional[str] = None
    #: Run the conservation-invariant checker on every written cell
    #: artifact (raises :class:`InvariantViolation` if the books don't
    #: balance — a chaos sweep that miscounts a request is worthless).
    verify_artifacts: bool = True

    def __post_init__(self) -> None:
        if not self.offered_loads_rps:
            raise ValueError("need at least one offered load")
        if any(load <= 0 for load in self.offered_loads_rps):
            raise ValueError("offered loads must be positive")
        if list(self.offered_loads_rps) != sorted(self.offered_loads_rps):
            raise ValueError("offered loads must be ascending")
        if not self.fault_intensities:
            raise ValueError("need at least one fault intensity")
        if any(i < 0 for i in self.fault_intensities):
            raise ValueError("fault intensities must be >= 0")
        if not self.control_plane:
            raise ValueError("need at least one control-plane arm")
        if self.n_tenants <= 0:
            raise ValueError("n_tenants must be positive")
        if self.requests_per_tenant <= 0:
            raise ValueError("requests_per_tenant must be positive")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if not 0.0 < self.goodput_floor <= 1.0:
            raise ValueError("goodput_floor must be in (0, 1]")

    def build_chains(self) -> List[AppChain]:
        if self.chain_factory is not None:
            return self.chain_factory()
        from ..workloads import build_benchmark_chains

        return build_benchmark_chains(self.benchmark, self.n_tenants)


@dataclass(frozen=True)
class ChaosPoint:
    """One (control plane, intensity, load) cell's serving outcome."""

    control_plane: bool
    intensity: float
    offered_rps: float
    goodput_rps: float
    p50_s: float
    p99_s: float
    completed: int
    failed: int
    violations: int
    shed: int
    retries: int
    fallbacks: int
    rerouted: int
    elapsed_s: float

    def sustains(self, floor: float) -> bool:
        """Did goodput keep up with at least ``floor`` of the offer?"""
        return self.goodput_rps >= floor * self.offered_rps


@dataclass
class ChaosSweepResult:
    """The full grid, with goodput-cliff queries."""

    slo_s: float
    seed: int
    goodput_floor: float
    points: List[ChaosPoint] = field(default_factory=list)

    def cell(
        self, intensity: float, control_plane: bool
    ) -> List[ChaosPoint]:
        """One (intensity, arm)'s points in ascending load order."""
        return sorted(
            (
                p
                for p in self.points
                if p.intensity == intensity
                and p.control_plane == control_plane
            ),
            key=lambda p: p.offered_rps,
        )

    def intensities(self) -> List[float]:
        seen: List[float] = []
        for point in self.points:
            if point.intensity not in seen:
                seen.append(point.intensity)
        return seen

    def goodput_curve(
        self, intensity: float, control_plane: bool
    ) -> List[Tuple[float, float]]:
        """(offered load, goodput) pairs for one arm."""
        return [
            (p.offered_rps, p.goodput_rps)
            for p in self.cell(intensity, control_plane)
        ]

    def goodput_cliff_rps(
        self,
        intensity: float,
        control_plane: bool,
        floor: Optional[float] = None,
    ) -> float:
        """Highest offered load sustained before the goodput cliff.

        Scans the arm's points in ascending load order and returns the
        last load whose goodput met ``floor * offered`` before the
        first point that missed it; 0.0 when even the lightest load
        misses.
        """
        floor = self.goodput_floor if floor is None else floor
        sustained = 0.0
        for point in self.cell(intensity, control_plane):
            if not point.sustains(floor):
                break
            sustained = point.offered_rps
        return sustained

    def cliff_shift_rps(self, intensity: float) -> float:
        """How far right the control plane moves the cliff (rps)."""
        return self.goodput_cliff_rps(intensity, True) - \
            self.goodput_cliff_rps(intensity, False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo_s": self.slo_s,
            "seed": self.seed,
            "goodput_floor": self.goodput_floor,
            "points": [
                {
                    "control_plane": p.control_plane,
                    "intensity": p.intensity,
                    "offered_rps": p.offered_rps,
                    "goodput_rps": p.goodput_rps,
                    "p50_s": p.p50_s,
                    "p99_s": p.p99_s,
                    "completed": p.completed,
                    "failed": p.failed,
                    "violations": p.violations,
                    "shed": p.shed,
                    "retries": p.retries,
                    "fallbacks": p.fallbacks,
                    "rerouted": p.rerouted,
                    "elapsed_s": p.elapsed_s,
                }
                for p in self.points
            ],
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical across equal runs."""
        return json.dumps(self.to_dict(), sort_keys=True)


def _run_cell(
    config: ChaosSweepConfig, plan: FaultPlan, resilient: bool, load: float
) -> ServeResult:
    chains = config.build_chains()
    system = DMXSystem(
        chains,
        SystemConfig(mode=config.mode),
        faults=plan,
        resilience=config.resilience if resilient else None,
    )
    per_tenant = load / len(chains)
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=make_arrivals(config.arrival_kind, per_tenant),
            n_requests=config.requests_per_tenant,
            queue_capacity=config.queue_capacity,
        )
        for chain in chains
    ]
    frontend = ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=config.max_inflight,
            shed=ShedPolicy.QUEUE,
            discipline=config.discipline,
            slo_s=config.slo_s,
            sample_period_s=config.sample_period_s,
            brownout=config.brownout if resilient else None,
        ),
        seed=config.seed,
    )
    return frontend.run()


def _point(
    resilient: bool, intensity: float, load: float, result: ServeResult
) -> ChaosPoint:
    has_latency = result.latency.count > 0
    return ChaosPoint(
        control_plane=resilient,
        intensity=intensity,
        offered_rps=load,
        goodput_rps=result.goodput_rps(),
        p50_s=result.percentile(0.50) if has_latency else 0.0,
        p99_s=result.percentile(0.99) if has_latency else 0.0,
        completed=result.completed,
        failed=result.failed,
        violations=sum(result.per_tenant_slo_violations().values()),
        shed=result.shed,
        retries=sum(r.retries for r in result.records),
        fallbacks=sum(1 for r in result.records if r.fell_back),
        rerouted=sum(1 for r in result.records if r.rerouted),
        elapsed_s=result.elapsed,
    )


def _write_cell_artifact(
    config: ChaosSweepConfig,
    resilient: bool,
    intensity_index: int,
    load_index: int,
    intensity: float,
    load: float,
    result: ServeResult,
) -> None:
    from ..telemetry import write_artifact

    os.makedirs(config.artifact_dir, exist_ok=True)
    arm = "resilient" if resilient else "baseline"
    path = os.path.join(
        config.artifact_dir,
        f"{arm}-i{intensity_index}-pt{load_index}.jsonl",
    )
    write_artifact(
        path,
        result.telemetry,
        meta={
            "control_plane": resilient,
            "intensity": intensity,
            "offered_rps": load,
            "seed": config.seed,
            "slo_s": config.slo_s,
            "mode": config.mode.value,
        },
    )
    if config.verify_artifacts:
        from .invariants import verify_artifact_path

        verify_artifact_path(path).raise_on_problems()


def run_chaos_cell(
    config: ChaosSweepConfig,
    intensity_index: int,
    resilient: bool,
    load_index: int,
) -> ChaosPoint:
    """Run one (intensity, arm, load) cell of ``config``'s grid.

    The unit of work sharded chaos execution distributes
    (:mod:`repro.eval.orchestrator`); :func:`run_chaos_sweep` is exactly
    this over the whole grid, so a cell computed here is byte-identical
    to the same cell inside a full sweep.
    """
    intensity = config.fault_intensities[intensity_index]
    load = config.offered_loads_rps[load_index]
    plan = scale_plan(config.base_plan, intensity)
    result = _run_cell(config, plan, resilient, load)
    if config.artifact_dir is not None:
        _write_cell_artifact(
            config, resilient, intensity_index, load_index,
            intensity, load, result,
        )
    return _point(resilient, intensity, load, result)


def run_chaos_sweep(config: ChaosSweepConfig) -> ChaosSweepResult:
    """Run the full {arm} × intensity × load grid of one chaos sweep."""
    sweep = ChaosSweepResult(
        slo_s=config.slo_s,
        seed=config.seed,
        goodput_floor=config.goodput_floor,
    )
    for intensity_index in range(len(config.fault_intensities)):
        for resilient in config.control_plane:
            for load_index in range(len(config.offered_loads_rps)):
                sweep.points.append(
                    run_chaos_cell(
                        config, intensity_index, resilient, load_index
                    )
                )
    return sweep
