"""Per-tenant token buckets for admission policing.

A :class:`TokenBucket` caps a tenant's *sustained* admission rate at
``rate_per_s`` while letting bursts of up to ``burst`` requests through
unthrottled — the standard policer shape. Refill is lazy (computed from
elapsed sim time on each query), so the bucket costs O(1) per arrival
and adds no DES events of its own.

The serving frontend consults the bucket at arrival time, *before* the
queue-capacity check: a policer protects co-tenants from a misbehaving
(bursty) tenant at the door, rather than letting the burst occupy queue
slots and dispatch windows first. The isolation test in
``tests/serve/test_isolation.py`` pins exactly that property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TokenBucketConfig", "TokenBucket"]


@dataclass(frozen=True)
class TokenBucketConfig:
    """Sustained rate + burst allowance for one tenant's policer.

    ``initial`` is the starting fill (defaults to a full bucket).
    """

    rate_per_s: float
    burst: float = 1.0
    initial: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1")
        if self.initial is not None and not 0.0 <= self.initial <= self.burst:
            raise ValueError("initial must be in [0, burst]")


class TokenBucket:
    """Lazily refilled token bucket on the (monotone) sim clock."""

    def __init__(self, config: TokenBucketConfig, now: float = 0.0):
        self.config = config
        self._tokens = (
            config.burst if config.initial is None else config.initial
        )
        self._last = now

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(
                self.config.burst,
                self._tokens + (now - self._last) * self.config.rate_per_s,
            )
            self._last = now

    def available(self, now: float) -> float:
        """Tokens on hand at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._tokens

    def try_take(self, now: float, tokens: float = 1.0) -> bool:
        """Admit (and debit) if at least ``tokens`` are on hand."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False
