"""The brownout ladder: graceful degradation driven by SLO headroom.

When the client-observed tail latency approaches the SLO, the serving
frontend climbs a ladder of progressively blunter interventions instead
of falling off a cliff:

====================  =====================================================
tier                  intervention
====================  =====================================================
``NORMAL``            none
``SHED_LOW``          shed arrivals from low-priority tenants at the door
``COALESCE``          dispatch with tenant affinity, so completion
                      notifications batch under the driver's NAPI-style
                      coalescing and DRX configuration stays warm
``FORCE_CPU``         submit requests with ``force_cpu=True`` — motion
                      stages restructure on the host, trading per-request
                      latency for not queueing behind a sick/saturated
                      DRX path
====================  =====================================================

The controller watches a sliding window of recent latencies and compares
the windowed tail quantile against the SLO: at or above
``escalate_at * slo`` it steps up one tier; at or below
``deescalate_at * slo`` it steps down one. The gap between the two
thresholds plus a minimum dwell time between changes is the hysteresis
that keeps the ladder from oscillating at a boundary.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..sim.tracing import exact_percentile

__all__ = ["BrownoutTier", "BrownoutConfig", "BrownoutController"]


class BrownoutTier(enum.IntEnum):
    """Degradation tiers, ordered by severity (comparable as ints)."""

    NORMAL = 0
    SHED_LOW = 1
    COALESCE = 2
    FORCE_CPU = 3


@dataclass(frozen=True)
class BrownoutConfig:
    """Ladder thresholds and hysteresis.

    ``shed_max_priority``: at ``SHED_LOW`` and above, arrivals from
    tenants with ``priority <= shed_max_priority`` are shed at the door.
    ``max_tier`` caps how far the ladder may climb (e.g. stop at
    ``COALESCE`` for a deployment that never degrades to CPU).
    """

    window: int = 32
    min_samples: int = 8
    quantile: float = 0.99
    escalate_at: float = 1.0
    deescalate_at: float = 0.7
    min_dwell_s: float = 10e-3
    update_period_s: float = 2e-3
    shed_max_priority: int = 0
    max_tier: BrownoutTier = BrownoutTier.FORCE_CPU

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError("min_samples must be in [1, window]")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.escalate_at <= 0:
            raise ValueError("escalate_at must be positive")
        if not 0.0 <= self.deescalate_at < self.escalate_at:
            raise ValueError("deescalate_at must be in [0, escalate_at)")
        if self.min_dwell_s < 0:
            raise ValueError("min_dwell_s must be >= 0")
        if self.update_period_s <= 0:
            raise ValueError("update_period_s must be positive")


class BrownoutController:
    """Sliding-window tail latency → degradation tier."""

    def __init__(self, slo_s: float, config: BrownoutConfig = BrownoutConfig()):
        if slo_s <= 0:
            raise ValueError("slo_s must be positive")
        self.slo_s = slo_s
        self.config = config
        self.tier = BrownoutTier.NORMAL
        self._window: Deque[float] = deque(maxlen=config.window)
        # None until the first tier change: a fresh controller has no
        # change to dwell on, so the ladder may move at any ``now``
        # (including now < min_dwell_s — the first-window bug this
        # replaces pinned the ladder at NORMAL for a whole dwell).
        self._last_change: Optional[float] = None
        #: (time, tier) history, starting implicitly at NORMAL.
        self.history: List[Tuple[float, BrownoutTier]] = []

    def observe(self, latency_s: float) -> None:
        """Push one completed request's client-observed latency."""
        self._window.append(latency_s)

    def windowed_tail(self) -> Optional[float]:
        """The window's tail quantile, or None below ``min_samples``."""
        if len(self._window) < self.config.min_samples:
            return None
        return exact_percentile(sorted(self._window), self.config.quantile)

    def update(
        self, now: float
    ) -> Optional[Tuple[BrownoutTier, BrownoutTier]]:
        """Evaluate the ladder at ``now``; returns ``(old, new)`` on a
        tier change, else None. At most one step per call, and never
        within ``min_dwell_s`` of the previous change."""
        if not self._may_change(now):
            return None
        tail = self.windowed_tail()
        if tail is None:
            return None
        old = self.tier
        if (
            tail >= self.config.escalate_at * self.slo_s
            and self.tier < self.config.max_tier
        ):
            self.tier = BrownoutTier(self.tier + 1)
        elif (
            tail <= self.config.deescalate_at * self.slo_s
            and self.tier > BrownoutTier.NORMAL
        ):
            self.tier = BrownoutTier(self.tier - 1)
        if self.tier is old:
            return None
        self._last_change = now
        self.history.append((now, self.tier))
        return (old, self.tier)

    def _may_change(self, now: float) -> bool:
        """Dwell gate: True when a tier change at ``now`` is allowed.

        Before the first change there is nothing to dwell on — the
        ladder may move immediately.
        """
        if self._last_change is None:
            return True
        return now - self._last_change >= self.config.min_dwell_s

    def set_tier(
        self, now: float, tier: BrownoutTier
    ) -> Optional[Tuple[BrownoutTier, BrownoutTier]]:
        """Controller-driven tier override (the closed-loop cost model
        in :mod:`repro.control` picks a target tier directly instead of
        stepping the ladder). Honors the same dwell hysteresis and
        ``max_tier`` cap as :meth:`update`; returns ``(old, new)`` on a
        change, else None."""
        if tier > self.config.max_tier:
            tier = self.config.max_tier
        if tier is self.tier or not self._may_change(now):
            return None
        old = self.tier
        self.tier = tier
        self._last_change = now
        self.history.append((now, self.tier))
        return (old, self.tier)
