"""The resilience control plane: from telemetry signals to decisions.

Where :mod:`repro.faults` recovers *per request* (watchdogs, retries,
deadline fallback), this package closes the loop at the *system* level:

* :mod:`repro.resilience.health` — windowed health scores per DRX unit,
  published into the shared metrics registry;
* :mod:`repro.resilience.breaker` — closed/open/half-open circuit
  breakers with seeded deterministic probes and anti-flap hysteresis;
* :mod:`repro.resilience.control` — the :class:`ControlPlane` facade
  :class:`~repro.core.system.DMXSystem` embeds (pass a
  :class:`ResilienceConfig`) to proactively route motion stages around
  sick units — to an alternate placement or to CPU restructuring —
  before any deadline budget is burned;
* :mod:`repro.resilience.admission` — per-tenant token buckets for the
  serving frontend's admission policer;
* :mod:`repro.resilience.brownout` — the graceful-degradation ladder
  (shed low priority → coalesce dispatch → force CPU) driven by
  p99-vs-SLO headroom;
* :mod:`repro.resilience.chaos` — :func:`run_chaos_sweep`, crossing
  FaultPlan intensity × offered load to chart the goodput cliff with
  and without the control plane;
* :mod:`repro.resilience.recovery` — permanent-failure domains: the
  :class:`DomainManager` executes a seeded
  :class:`~repro.faults.CrashPlan` (crash → detect → decommission →
  drain → rescue → revive → re-admit) against a live
  :class:`~repro.core.system.DMXSystem`;
* :mod:`repro.resilience.invariants` — the post-hoc conservation
  checker proving every chaos/recovery artifact balances its books
  (``python -m repro.telemetry verify``).

Everything is deterministic given a seed, like the rest of the repo.
"""

from .admission import TokenBucket, TokenBucketConfig
from .breaker import (
    BreakerConfig,
    BreakerDecision,
    BreakerState,
    CircuitBreaker,
)
from .brownout import BrownoutConfig, BrownoutController, BrownoutTier
from .control import ControlPlane, ResilienceConfig
from .health import HealthConfig, HealthMonitor

__all__ = [
    "HealthConfig",
    "HealthMonitor",
    "BreakerState",
    "BreakerConfig",
    "BreakerDecision",
    "CircuitBreaker",
    "TokenBucketConfig",
    "TokenBucket",
    "BrownoutTier",
    "BrownoutConfig",
    "BrownoutController",
    "ResilienceConfig",
    "ControlPlane",
    # lazy (see __getattr__): chaos-sweep entry points
    "ChaosSweepConfig",
    "ChaosPoint",
    "ChaosSweepResult",
    "run_chaos_sweep",
    "run_chaos_cell",
    "scale_plan",
    "DEFAULT_CHAOS_PLAN",
    # lazy: permanent-failure domains + conservation invariants
    "DomainManager",
    "RecoveryScenarioConfig",
    "RecoveryScenarioResult",
    "run_recovery_scenario",
    "InvariantReport",
    "InvariantViolation",
    "verify_artifact",
    "verify_artifact_path",
]

#: Names served lazily from :mod:`repro.resilience.chaos`. The chaos
#: module drives full serving experiments, so it imports ``repro.core``
#: and ``repro.serve`` — which themselves import the breaker/brownout
#: modules above. Deferring the import (PEP 562) keeps this package
#: importable from inside ``repro.core.system`` without a cycle.
_CHAOS_EXPORTS = frozenset({
    "ChaosSweepConfig", "ChaosPoint", "ChaosSweepResult",
    "run_chaos_sweep", "run_chaos_cell", "scale_plan",
    "DEFAULT_CHAOS_PLAN",
})

#: Served lazily from :mod:`repro.resilience.recovery` /
#: :mod:`repro.resilience.invariants` for the same cycle reason.
_RECOVERY_EXPORTS = frozenset({
    "DomainManager", "RecoveryScenarioConfig", "RecoveryScenarioResult",
    "run_recovery_scenario",
})
_INVARIANT_EXPORTS = frozenset({
    "InvariantReport", "InvariantViolation", "verify_artifact",
    "verify_artifact_path",
})


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from . import chaos

        return getattr(chaos, name)
    if name in _RECOVERY_EXPORTS:
        from . import recovery

        return getattr(recovery, name)
    if name in _INVARIANT_EXPORTS:
        from . import invariants

        return getattr(invariants, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
