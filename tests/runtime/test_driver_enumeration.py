"""Tests for the interrupt/polling driver model and PCIe enumeration."""

import pytest

from repro.cpu import HostCPU
from repro.interconnect import Fabric
from repro.runtime import (
    NotificationCosts,
    NotificationModel,
    enumerate_fabric,
)
from repro.sim import Simulator


def make_model(sim=None, **cost_overrides):
    sim = sim or Simulator()
    cpu = HostCPU(sim)
    costs = NotificationCosts(**cost_overrides)
    return sim, NotificationModel(sim, cpu, costs)


def test_costs_validation():
    with pytest.raises(ValueError):
        NotificationCosts(interrupt_s=-1.0)
    with pytest.raises(ValueError):
        NotificationCosts(coalesce_window_s=0.0)


def test_sparse_notifications_take_full_interrupt_cost():
    sim, model = make_model()
    charged = []

    def proc(sim):
        for _ in range(3):
            cost = yield from model.notify("accel0")
            charged.append(cost)
            yield sim.timeout(1.0)  # slow arrival: no coalescing

    sim.spawn(proc(sim))
    sim.run()
    assert charged == [model.costs.interrupt_s] * 3
    assert model.stats.interrupts == 3
    assert model.stats.coalesced == 0


def test_burst_notifications_coalesce():
    sim, model = make_model()
    charged = []

    def proc(sim):
        for _ in range(4):
            cost = yield from model.notify("accel0")
            charged.append(cost)
            yield sim.timeout(1e-6)  # inside the coalescing window

    sim.spawn(proc(sim))
    sim.run()
    assert charged[0] == model.costs.interrupt_s
    assert all(c == model.costs.coalesced_s for c in charged[1:])


def test_sustained_high_rate_switches_to_polling():
    sim, model = make_model()

    def proc(sim):
        for _ in range(64):
            yield from model.notify("accel0")
            yield sim.timeout(2e-6)  # 500 kHz >> 50 kHz threshold

    sim.spawn(proc(sim))
    sim.run()
    assert model.is_polling("accel0")
    assert model.stats.polled > 0


def test_polling_mode_exits_with_hysteresis():
    sim, model = make_model()

    def proc(sim):
        for _ in range(64):
            yield from model.notify("accel0")
            yield sim.timeout(2e-6)
        # Rate collapses far below threshold/2.
        for _ in range(40):
            yield from model.notify("accel0")
            yield sim.timeout(0.01)

    sim.spawn(proc(sim))
    sim.run()
    assert not model.is_polling("accel0")


def test_per_device_rate_tracking_is_independent():
    sim, model = make_model()

    def fast(sim):
        for _ in range(64):
            yield from model.notify("hot")
            yield sim.timeout(2e-6)

    def slow(sim):
        for _ in range(5):
            yield from model.notify("cold")
            yield sim.timeout(0.5)

    sim.spawn(fast(sim))
    sim.spawn(slow(sim))
    sim.run()
    assert model.is_polling("hot")
    assert not model.is_polling("cold")


# -- enumeration ---------------------------------------------------------------


def build_fabric():
    sim = Simulator()
    fabric = Fabric(sim)
    sw0 = fabric.add_switch("sw0")
    sw1 = fabric.add_switch("sw1")
    fabric.add_endpoint("accel0", sw0)
    fabric.add_endpoint("accel1", sw0)
    fabric.add_inline("accel0.drx", "accel0")
    fabric.add_endpoint("accel2", sw1)
    fabric.add_endpoint("drx.standalone", sw1)
    return fabric


def test_enumeration_discovers_and_classifies():
    inventory = enumerate_fabric(build_fabric())
    names = {d.name for d in inventory.devices}
    assert names == {
        "accel0", "accel1", "accel0.drx", "accel2", "drx.standalone"
    }
    assert {d.name for d in inventory.accelerators} == {
        "accel0", "accel1", "accel2"
    }
    assert {d.name for d in inventory.drxs} == {
        "accel0.drx", "drx.standalone"
    }


def test_enumeration_assigns_bdf_addresses():
    inventory = enumerate_fabric(build_fabric())
    device = inventory.find("accel0")
    assert device.bdf.endswith(".0")
    buses = {d.bus for d in inventory.devices}
    assert len(buses) == 2  # one bus per switch


def test_enumeration_provisions_queue_partitions():
    inventory = enumerate_fabric(build_fabric())
    assert set(inventory.partitions) == {"accel0.drx", "drx.standalone"}
    partition = inventory.partitions["accel0.drx"]
    # Queues for all 3 accelerators plus the peer DRX.
    assert sorted(partition.peers) == [
        "accel0", "accel1", "accel2", "drx.standalone"
    ]


def test_enumeration_find_unknown_raises():
    inventory = enumerate_fabric(build_fabric())
    with pytest.raises(KeyError):
        inventory.find("ghost")


def test_enumeration_rejects_over_provisioned_fabric():
    sim = Simulator()
    fabric = Fabric(sim)
    switches = [fabric.add_switch(f"sw{i}") for i in range(6)]
    for i in range(42):  # over the 40-accelerator budget
        fabric.add_endpoint(f"accel{i}", switches[i // 8])
    fabric.add_endpoint("drx0", switches[5])
    with pytest.raises(MemoryError):
        enumerate_fabric(fabric)
