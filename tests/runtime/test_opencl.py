"""Tests for the OpenCL-style host programming model."""

import numpy as np
import pytest

from repro.runtime import CLError, Context, DeviceHandle


def make_context():
    return Context(
        [
            DeviceHandle("fft", "accelerator"),
            DeviceHandle("svm", "accelerator"),
            DeviceHandle("drx0", "drx"),
            DeviceHandle("host", "cpu"),
        ]
    )


def test_context_requires_devices():
    with pytest.raises(CLError):
        Context([])


def test_context_rejects_duplicate_devices():
    with pytest.raises(CLError):
        Context([DeviceHandle("a", "cpu"), DeviceHandle("a", "cpu")])


def test_unknown_device_kind_rejected():
    with pytest.raises(CLError):
        DeviceHandle("x", "gpu")


def test_buffer_create_and_rw():
    ctx = make_context()
    buf = ctx.create_buffer("audio", np.arange(4))
    np.testing.assert_array_equal(buf.read(), np.arange(4))
    buf.write(np.zeros(2))
    assert buf.version == 1


def test_duplicate_buffer_rejected():
    ctx = make_context()
    ctx.create_buffer("x")
    with pytest.raises(CLError):
        ctx.create_buffer("x")


def test_read_unwritten_buffer_raises():
    ctx = make_context()
    buf = ctx.create_buffer("empty")
    with pytest.raises(CLError):
        buf.read()


def test_enqueue_kernel_blocking_executes():
    ctx = make_context()
    queue = ctx.create_queue("fft")
    src = ctx.create_buffer("in", np.array([1.0, 2.0]))
    dst = ctx.create_buffer("out")
    event = queue.enqueue_kernel(
        lambda x: x * 2, [src], dst, blocking=True
    )
    np.testing.assert_array_equal(event.wait(), [2.0, 4.0])
    np.testing.assert_array_equal(dst.read(), [2.0, 4.0])


def test_nonblocking_commands_run_in_order_on_finish():
    ctx = make_context()
    queue = ctx.create_queue("fft")
    a = ctx.create_buffer("a", 1)
    b = ctx.create_buffer("b")
    c = ctx.create_buffer("c")
    e1 = queue.enqueue_kernel(lambda x: x + 1, [a], b)
    e2 = queue.enqueue_kernel(lambda x: x * 10, [b], c)
    assert not e1.complete and not e2.complete
    queue.finish()
    assert c.read() == 20


def test_wait_before_completion_raises():
    ctx = make_context()
    queue = ctx.create_queue("fft")
    a = ctx.create_buffer("a", 1)
    b = ctx.create_buffer("b")
    event = queue.enqueue_kernel(lambda x: x, [a], b)
    with pytest.raises(CLError):
        event.wait()


def test_cross_queue_dependency_enforced():
    ctx = make_context()
    q1 = ctx.create_queue("fft")
    q2 = ctx.create_queue("svm")
    a = ctx.create_buffer("a", 5)
    b = ctx.create_buffer("b")
    c = ctx.create_buffer("c")
    e1 = q1.enqueue_kernel(lambda x: x + 1, [a], b)
    q2.enqueue_kernel(lambda x: x * 2, [b], c, wait_for=[e1])
    # Draining q2 before q1 violates the dependency.
    with pytest.raises(CLError, match="incomplete"):
        q2.finish()
    q1.finish()
    q2.finish()
    assert c.read() == 12


def test_enqueue_copy():
    ctx = make_context()
    queue = ctx.create_queue("drx0")
    src = ctx.create_buffer("src", np.ones(3))
    dst = ctx.create_buffer("dst")
    queue.enqueue_copy(src, dst, blocking=True)
    np.testing.assert_array_equal(dst.read(), np.ones(3))


def test_one_queue_per_device():
    ctx = make_context()
    ctx.create_queue("fft")
    with pytest.raises(CLError):
        ctx.create_queue("fft")


def test_foreign_buffer_rejected():
    ctx1, ctx2 = make_context(), make_context()
    queue = ctx1.create_queue("fft")
    foreign = ctx2.create_buffer("x", 1)
    local = ctx1.create_buffer("y")
    with pytest.raises(CLError):
        queue.enqueue_kernel(lambda v: v, [foreign], local)


def test_finish_all_drains_every_queue():
    ctx = make_context()
    q1, q2 = ctx.create_queue("fft"), ctx.create_queue("svm")
    a = ctx.create_buffer("a", 2)
    b = ctx.create_buffer("b")
    c = ctx.create_buffer("c", 3)
    d = ctx.create_buffer("d")
    q1.enqueue_kernel(lambda x: x, [a], b)
    q2.enqueue_kernel(lambda x: x, [c], d)
    ctx.finish_all()
    assert b.read() == 2 and d.read() == 3
    assert q1.commands_executed == 1 and q2.commands_executed == 1


def test_full_sound_detection_host_program():
    """The Sec. V workflow: app kernels on accelerators, motion on DRX."""
    from repro.accelerators import FFTAccelerator, SVMAccelerator
    from repro.restructuring import (
        FeatureFlatten,
        LogCompress,
        MelScale,
        PowerSpectrum,
        RestructuringPipeline,
        SpectrogramAssembly,
    )
    from repro.workloads.generators import make_audio_snippet

    fft = FFTAccelerator(frame_len=512, hop=256)
    motion = RestructuringPipeline(
        "motion",
        [PowerSpectrum(), SpectrogramAssembly(), MelScale(32, 22050.0),
         LogCompress(), FeatureFlatten()],
    )

    ctx = Context(
        [
            DeviceHandle("fft-accel", "accelerator", fft),
            DeviceHandle("drx", "drx", motion),
            DeviceHandle("svm-accel", "accelerator"),
        ]
    )
    q_fft = ctx.create_queue("fft-accel")
    q_drx = ctx.create_queue("drx")

    audio = ctx.create_buffer("audio", make_audio_snippet(0.5))
    spectra = ctx.create_buffer("spectra")
    features = ctx.create_buffer("features")

    e1 = q_fft.enqueue_kernel(fft.run, [audio], spectra)
    q_drx.enqueue_kernel(motion.apply, [spectra], features, wait_for=[e1])
    q_fft.finish()
    q_drx.finish()
    assert features.read().shape[0] == 1
    assert features.read().dtype == np.float32
