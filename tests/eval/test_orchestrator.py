"""Sharded sweep orchestration: determinism, crash resume, incremental
re-runs, and the experiment store's claiming discipline."""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core import Mode
from repro.eval.orchestrator import (
    ExperimentStore,
    IncompleteGridError,
    OrchestratorError,
    _worker_main,
    collect,
    decode_experiment,
    encode_experiment,
    fill_store,
    grid_points,
    main,
    point_key,
    run_grid,
    run_workers,
)
from repro.faults import FaultPlan, FaultPolicy
from repro.resilience import ChaosSweepConfig, run_chaos_sweep
from repro.serve import ShedPolicy, SweepConfig, run_sweep


def small_sweep(**overrides):
    defaults = dict(
        offered_loads_rps=(40.0, 160.0),
        benchmark="sound-detection",
        n_tenants=2,
        requests_per_tenant=4,
        modes=(Mode.MULTI_AXL, Mode.BUMP_IN_WIRE),
        sample_period_s=None,
        seed=5,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


def small_chaos(**overrides):
    defaults = dict(
        offered_loads_rps=(60.0,),
        fault_intensities=(0.5,),
        requests_per_tenant=4,
        sample_period_s=None,
        seed=3,
    )
    defaults.update(overrides)
    return ChaosSweepConfig(**defaults)


# -- codec ---------------------------------------------------------------


def test_config_codec_round_trips_sweep_config():
    config = small_sweep(
        shed=ShedPolicy.REJECT,
        faults=FaultPlan(seed=9, drx=FaultPolicy(hang_p=0.2)),
    )
    kind, decoded = decode_experiment(
        json.loads(json.dumps(encode_experiment(config)))
    )
    assert kind == "sweep"
    assert decoded == config


def test_config_codec_round_trips_chaos_config():
    config = small_chaos(control_plane=(False, True))
    kind, decoded = decode_experiment(
        json.loads(json.dumps(encode_experiment(config)))
    )
    assert kind == "chaos"
    assert decoded == config


def test_chain_factory_closures_are_rejected():
    config = small_sweep(chain_factory=lambda: [])
    with pytest.raises(OrchestratorError, match="chain_factory"):
        encode_experiment(config)


def test_point_keys_are_stable_and_coordinate_distinct():
    specs = grid_points(small_sweep())
    keys = [point_key(s) for s in specs]
    assert len(set(keys)) == len(keys)  # every grid point distinct
    assert keys == [point_key(s) for s in grid_points(small_sweep())]


# -- store discipline ----------------------------------------------------


def test_fill_is_idempotent_and_claim_is_exclusive(tmp_path):
    db = str(tmp_path / "exp.db")
    specs = grid_points(small_sweep())
    with ExperimentStore(db) as store:
        assert store.fill(specs) == len(specs)
        assert store.fill(specs) == 0  # nothing new on re-fill
        first = store.claim("w1")
        assert first is not None
        claimed = {first[0]}
        while True:
            nxt = store.claim("w2")
            if nxt is None:
                break
            assert nxt[0] not in claimed  # a row is handed out once
            claimed.add(nxt[0])
        assert len(claimed) == len(specs)
        assert store.counts()["running"] == len(specs)


def test_reclaim_requeues_running_and_error_rows(tmp_path):
    db = str(tmp_path / "exp.db")
    specs = grid_points(small_sweep())
    with ExperimentStore(db) as store:
        store.fill(specs)
        key, _ = store.claim("crashed-worker")
        other, _ = store.claim("w2")
        store.fail(other, "boom")
        assert store.counts() == {
            "pending": len(specs) - 2, "running": 1, "done": 0, "error": 1,
        }
        assert store.reclaim_stale() == 2
        assert store.counts()["pending"] == len(specs)


def test_collect_refuses_an_incomplete_grid(tmp_path):
    db = str(tmp_path / "exp.db")
    config = small_sweep()
    fill_store(db, config)
    with pytest.raises(IncompleteGridError):
        collect(db, config)


# -- end-to-end determinism ----------------------------------------------


def test_orchestrated_sweep_is_byte_identical_to_run_sweep(tmp_path):
    config = small_sweep()
    direct = run_sweep(config).to_json()
    result = run_grid(str(tmp_path / "exp.db"), config, n_workers=2)
    assert result.to_json() == direct


def test_orchestrated_chaos_is_byte_identical_to_run_chaos_sweep(tmp_path):
    config = small_chaos()
    direct = run_chaos_sweep(config).to_json()
    result = run_grid(str(tmp_path / "exp.db"), config, n_workers=2)
    assert result.to_json() == direct


def test_killed_worker_resumes_to_byte_identical_result(tmp_path):
    """SIGKILL a worker mid-grid; the resumed run must reclaim the
    orphaned claim, skip finished points, and collect byte-identically."""
    config = small_sweep()
    direct = run_sweep(config).to_json()
    db = str(tmp_path / "exp.db")
    fill_store(db, config)

    context = multiprocessing.get_context("fork")
    proc = context.Process(target=_worker_main, args=(db, "victim"))
    proc.start()
    # Kill as soon as at least one point finished (mid-grid, not after).
    deadline = time.time() + 60
    killed_after = None
    try:
        while time.time() < deadline:
            with ExperimentStore(db) as store:
                counts = store.counts()
            if counts["done"] >= 1 and counts["done"] < 4:
                killed_after = counts["done"]
                break
            if counts["done"] == 4:  # worker outran the poll; still fine
                killed_after = 4
                break
            time.sleep(0.01)
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.join()
    assert killed_after is not None, "worker made no progress in 60s"

    # Resume: stale 'running' rows are reclaimed, done rows are kept.
    with ExperimentStore(db) as store:
        done_before = {
            key
            for key, row in store.results_for(
                [point_key(s) for s in grid_points(config)]
            ).items()
            if row is not None
        }
    counts = run_workers(db, n_workers=2)
    assert counts == {"pending": 0, "running": 0, "done": 4, "error": 0}
    with ExperimentStore(db) as store:
        attempts = dict(
            store._conn.execute(
                "SELECT point_key, attempts FROM experiments"
            ).fetchall()
        )
    # Finished points were not re-run on resume.
    for key in done_before:
        assert attempts[key] == 1
    assert collect(db, config).to_json() == direct


def test_changed_config_reruns_exactly_the_changed_points(tmp_path):
    """Editing the grid re-fills only the points whose content hash
    changed; finished points of the old grid are reused untouched."""
    db = str(tmp_path / "exp.db")
    config = small_sweep(modes=(Mode.MULTI_AXL,))
    run_grid(db, config, n_workers=0)

    # Same config: nothing new to do.
    assert fill_store(db, config) == 0

    # Adding a mode adds exactly that mode's points.
    wider = small_sweep(modes=(Mode.MULTI_AXL, Mode.BUMP_IN_WIRE))
    assert fill_store(db, wider) == len(config.offered_loads_rps)
    with ExperimentStore(db) as store:
        assert store.counts()["pending"] == len(config.offered_loads_rps)
    result = run_grid(db, wider, n_workers=0)
    assert result.to_json() == run_sweep(wider).to_json()

    with ExperimentStore(db) as store:
        attempts = dict(
            store._conn.execute(
                "SELECT point_key, attempts FROM experiments"
            ).fetchall()
        )
    # The original mode's points ran once, ever.
    for spec in grid_points(config):
        assert attempts[point_key(spec)] == 1

    # Changing one load value re-runs exactly that column of the grid.
    shifted = small_sweep(
        modes=(Mode.MULTI_AXL, Mode.BUMP_IN_WIRE),
        offered_loads_rps=(40.0, 200.0),
    )
    assert fill_store(db, shifted) == len(shifted.modes)  # 200.0 only
    assert run_grid(db, shifted, n_workers=0).to_json() == \
        run_sweep(shifted).to_json()


def test_failing_point_is_recorded_not_fatal(tmp_path):
    db = str(tmp_path / "exp.db")
    config = small_sweep(modes=(Mode.MULTI_AXL,), offered_loads_rps=(40.0,))
    fill_store(db, config)
    # Corrupt the stored spec so the worker's run_point raises.
    with ExperimentStore(db) as store:
        store._conn.execute(
            "UPDATE experiments SET spec_json=json_set(spec_json,"
            " '$.kind', 'nonsense')"
        )
        store._conn.commit()
    counts = run_workers(db, n_workers=0)
    assert counts["error"] == 1
    with pytest.raises(OrchestratorError):
        run_grid(db, config, n_workers=0)


# -- CLI -----------------------------------------------------------------


def test_cli_fill_run_status_collect_round_trip(tmp_path, capsys):
    config = small_sweep(modes=(Mode.MULTI_AXL,))
    spec_path = str(tmp_path / "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(encode_experiment(config), handle)
    db = str(tmp_path / "exp.db")
    out = str(tmp_path / "result.json")

    assert main(["fill", "--db", db, "--spec", spec_path]) == 0
    assert main([
        "run", "--db", db, "--spec", spec_path, "--serial",
        "--max-points", "1",
    ]) == 0
    assert "pending=1" in capsys.readouterr().out.splitlines()[-1]
    assert main(["run", "--db", db, "--spec", spec_path, "--serial"]) == 0
    assert main(["status", "--db", db]) == 0
    assert "done=2" in capsys.readouterr().out.splitlines()[-1]
    assert main([
        "collect", "--db", db, "--spec", spec_path, "--out", out,
    ]) == 0
    with open(out, "r", encoding="utf-8") as handle:
        assert handle.read().strip() == run_sweep(config).to_json()
