"""Tests for the experiment harness and report formatting."""

import pytest

from repro.core import Mode
from repro.eval import (
    Banner,
    fig3b_motivation_speedup,
    fig5_topdown,
    fig11_speedup,
    fig12_breakdown,
    fig17_collectives,
    fig18_lane_sweep,
    format_ratio,
    format_table,
    run_mode,
    table1_benchmarks,
)


def test_format_ratio():
    assert format_ratio(3.456) == "3.46x"


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1], ["longer", 22]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("name")
    assert "----" in lines[2]
    assert len(lines) == 5


def test_banner_renders():
    text = str(Banner("hello"))
    assert "hello" in text
    assert text.startswith("=")


def test_run_mode_returns_system_and_result():
    system, result = run_mode("sound-detection", 1, Mode.MULTI_AXL)
    assert result.mean_latency() > 0
    assert system.sim.now > 0


def test_run_mode_throughput_mode():
    _, result = run_mode("sound-detection", 1, Mode.BUMP_IN_WIRE,
                         throughput=True)
    assert result.throughput() > 0


def test_table1_lists_five_benchmarks():
    rows = table1_benchmarks()
    assert len(rows) == 5
    assert all(len(row) == 7 for row in rows)


def test_fig11_small_sweep_structure():
    result = fig11_speedup(levels=(1,))
    assert set(result.per_benchmark) == {
        "video-surveillance", "sound-detection", "brain-stimulation",
        "pii-redaction", "db-hash-join",
    }
    assert result.geomean(1) > 1.0
    rows = result.rows()
    assert rows[-1][0] == "GEOMEAN"


def test_fig12_breakdown_fractions_normalized():
    results = fig12_breakdown(levels=(1,))
    for label, breakdown in results.items():
        total = sum(breakdown.fractions[1].values())
        assert total == pytest.approx(1.0)
        assert breakdown.rows()[0][0] == 1


def test_fig3b_reports_both_levels():
    result = fig3b_motivation_speedup(levels=(1,))
    assert 1 in result.end_to_end
    assert result.per_kernel_geomean > 1.0


def test_fig5_has_row_per_benchmark():
    result = fig5_topdown()
    assert len(result.rows_by_benchmark) == 5
    assert len(result.rows()) == 5


def test_fig17_small_fanout():
    results = fig17_collectives(fan_outs=(4,), payload_bytes=1024 * 1024)
    assert set(results) == {"broadcast", "allreduce"}
    assert results["broadcast"].speedups[4] > 0


def test_fig18_small_sweep():
    sweep = fig18_lane_sweep(lanes=(32, 128), n_apps=1)
    assert sweep[128] >= sweep[32]


def test_eval_cli_rejects_unknown_experiment():
    from repro.eval.__main__ import main

    assert main(["not-a-figure"]) == 2


def test_eval_cli_runs_selected(capsys):
    from repro.eval.__main__ import main

    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "db-hash-join" in out
