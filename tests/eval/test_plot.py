"""`python -m repro.eval.plot`: figure rendering from checked-in
miniature artifacts — every input shape, deterministic output bytes,
no matplotlib required."""

import json
import os
import sqlite3

import pytest

from repro.eval.plot import (
    Series,
    crossover_figure,
    knee_figure,
    load_crossover_records,
    load_sweep_points,
    main,
    render_svg,
)

DATA = os.path.join(os.path.dirname(__file__), "data")
MINI_SWEEP = os.path.join(DATA, "mini_sweep.json")
MINI_CROSSOVER = os.path.join(DATA, "mini_crossover.json")


def test_load_sweep_points_json():
    points = load_sweep_points(MINI_SWEEP)
    assert len(points) == 6
    assert {p["mode"] for p in points} == {"multi-axl", "bump-in-wire"}


def test_load_sweep_points_jsonl(tmp_path):
    points = load_sweep_points(MINI_SWEEP)
    path = tmp_path / "points.jsonl"
    path.write_text("\n".join(json.dumps(p) for p in points) + "\n")
    assert load_sweep_points(str(path)) == points


def test_load_sweep_points_sqlite(tmp_path):
    """The orchestrator-store path: done rows' result payloads."""
    points = load_sweep_points(MINI_SWEEP)
    db = tmp_path / "store.db"
    with sqlite3.connect(db) as conn:
        conn.execute(
            "CREATE TABLE experiments ("
            "point_key TEXT PRIMARY KEY, kind TEXT NOT NULL, "
            "spec_json TEXT NOT NULL, "
            "status TEXT NOT NULL DEFAULT 'pending', "
            "worker TEXT NOT NULL DEFAULT '', "
            "attempts INTEGER NOT NULL DEFAULT 0, "
            "result_json TEXT, error TEXT, "
            "updated_at REAL NOT NULL DEFAULT 0)"
        )
        for index, point in enumerate(points):
            conn.execute(
                "INSERT INTO experiments "
                "(point_key, kind, spec_json, status, result_json) "
                "VALUES (?, 'sweep', '{}', 'done', ?)",
                (f"k{index:04d}", json.dumps(point)),
            )
        # A pending row must not leak into the figure.
        conn.execute(
            "INSERT INTO experiments (point_key, kind, spec_json, status) "
            "VALUES ('k9999', 'sweep', '{}', 'pending')"
        )
    loaded = load_sweep_points(str(db))
    assert loaded == points


def test_knee_figure_renders_svg(tmp_path):
    written = knee_figure(load_sweep_points(MINI_SWEEP), str(tmp_path))
    assert str(tmp_path / "knee.svg") in written
    svg = (tmp_path / "knee.svg").read_text()
    assert svg.startswith("<svg")
    assert "multi-axl" in svg and "bump-in-wire" in svg
    assert "offered load" in svg


def test_crossover_figure_renders_svg(tmp_path):
    written = crossover_figure(
        load_crossover_records(MINI_CROSSOVER), str(tmp_path)
    )
    assert str(tmp_path / "backend-crossover.svg") in written
    svg = (tmp_path / "backend-crossover.svg").read_text()
    for backend in ("dsa", "drx", "xdma", "planner"):
        assert backend in svg


def test_svg_output_is_deterministic(tmp_path):
    a = knee_figure(load_sweep_points(MINI_SWEEP), str(tmp_path / "a"))
    b = knee_figure(load_sweep_points(MINI_SWEEP), str(tmp_path / "b"))
    assert (tmp_path / "a" / "knee.svg").read_bytes() == (
        tmp_path / "b" / "knee.svg"
    ).read_bytes()
    assert os.path.basename(a[0]) == os.path.basename(b[0])


def test_render_svg_rejects_empty():
    with pytest.raises(ValueError):
        render_svg([], "/tmp/never.svg", "t", "x", "y")
    with pytest.raises(ValueError):
        knee_figure([], "/tmp/never")


def test_cli_knee_and_crossover(tmp_path, capsys):
    assert main([
        "knee", "--input", MINI_SWEEP,
        "--out-dir", str(tmp_path), "--metric", "mean_s",
    ]) == 0
    assert main([
        "crossover", "--input", MINI_CROSSOVER, "--out-dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "knee.svg" in out and "backend-crossover.svg" in out
    assert (tmp_path / "knee.svg").exists()
    assert (tmp_path / "backend-crossover.svg").exists()


def test_series_sorts_points():
    s = Series("x", [(3, 1.0), (1, 2.0), (2, 0.5)])
    assert [x for x, _ in s.points] == [1.0, 2.0, 3.0]


def test_end_to_end_from_real_sweep(tmp_path):
    """A real (tiny) sweep's to_json feeds the knee figure unchanged."""
    from repro.core.placement import Mode
    from repro.serve.sweep import SweepConfig, run_sweep

    result = run_sweep(SweepConfig(
        offered_loads_rps=(60.0, 180.0),
        requests_per_tenant=3,
        modes=(Mode.BUMP_IN_WIRE,),
        sample_period_s=None,
        seed=7,
    ))
    path = tmp_path / "sweep.json"
    path.write_text(result.to_json())
    written = knee_figure(load_sweep_points(str(path)), str(tmp_path))
    assert (tmp_path / "knee.svg").exists()
    assert written
