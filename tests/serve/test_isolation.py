"""Tenant isolation and graceful degradation at the frontend.

The satellite scenario from the resilience PR: a bursty MMPP tenant and
a well-paced tenant share one standalone DRX card. Under plain FCFS the
burst queues ahead of the paced tenant and wrecks its tail; with a
token-bucket policer on the bursty tenant, the paced tenant's p99 stays
near its unloaded service latency. Plus the new dispatch disciplines
(EDF, strict priority) and the brownout ladder end to end.
"""

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.profiles import WorkProfile
from repro.resilience import BrownoutConfig, BrownoutTier, TokenBucketConfig
from repro.serve import (
    Discipline,
    FrontendConfig,
    ServingFrontend,
    ShedPolicy,
    TenantSpec,
)
from repro.serve.arrivals import (
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
)

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

#: Unloaded service latency of one request is ~7 ms (see
#: test_paced_tenant_isolated...); the isolation bound is a small
#: multiple of that, far below what the unpoliced burst inflicts.
ISOLATION_BOUND_S = 10e-3


def make_chain(i):
    profile = WorkProfile(
        name="motion", bytes_in=24 * MB, bytes_out=6 * MB,
        elements=3 * MB, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=5e-3, accel_time_s=1e-3,
                        output_bytes=12 * MB),
            MotionStage("m", profile, input_bytes=12 * MB,
                        output_bytes=6 * MB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=4e-3, accel_time_s=8e-4,
                        output_bytes=MB),
        ],
    )


def shared_card_system():
    # Two apps in STANDALONE mode share one card (drx.s0): the bursty
    # tenant's queueing lands directly on its neighbour.
    return DMXSystem(
        [make_chain(0), make_chain(1)], SystemConfig(mode=Mode.STANDALONE)
    )


# -- token-bucket isolation ----------------------------------------------------


def run_isolation(rate_limit):
    system = shared_card_system()
    tenants = [
        TenantSpec(
            name="app0",
            arrivals=MMPPArrivals(base_rate_rps=20.0, burst_factor=12.0),
            n_requests=60, queue_capacity=64, rate_limit=rate_limit,
        ),
        TenantSpec(
            name="app1", arrivals=DeterministicArrivals(25.0),
            n_requests=40, queue_capacity=64,
        ),
    ]
    frontend = ServingFrontend(
        system, tenants,
        FrontendConfig(max_inflight=2, shed=ShedPolicy.QUEUE),
        seed=5,
    )
    return frontend.run()


def test_bursty_neighbour_wrecks_paced_tail_under_plain_fcfs():
    result = run_isolation(rate_limit=None)
    paced = result.tenants["app1"]
    assert paced.shed == 0 and paced.completed == 40
    # The MMPP bursts queue ahead of the paced tenant: its p99 blows
    # far past the isolation bound with no policer at the door.
    assert paced.latency.percentile(0.99) > ISOLATION_BOUND_S


def test_paced_tenant_isolated_by_token_bucket_on_the_bursty_one():
    result = run_isolation(
        rate_limit=TokenBucketConfig(rate_per_s=25.0, burst=4.0)
    )
    bursty, paced = result.tenants["app0"], result.tenants["app1"]
    # The policer absorbs the burst at the door...
    assert bursty.rate_limited > 0
    assert bursty.rate_limited == bursty.shed
    # ...and the paced tenant's tail stays near service latency.
    assert paced.completed == 40 and paced.shed == 0
    assert paced.latency.percentile(0.99) <= ISOLATION_BOUND_S
    # Shed-cause breakdown reaches the serialized summary.
    tenants = result.to_dict()["tenants"]
    assert tenants["app0"]["rate_limited"] == bursty.rate_limited
    assert tenants["app0"]["brownout_shed"] == 0


def test_rate_limited_arrivals_are_observable_in_telemetry():
    result = run_isolation(
        rate_limit=TokenBucketConfig(rate_per_s=25.0, burst=4.0)
    )
    counter = result.telemetry.metrics.counter("rate_limited", tenant="app0")
    assert counter.value == result.tenants["app0"].rate_limited
    instants = [
        i for i in result.telemetry.instants if i.name == "rate_limited"
    ]
    assert len(instants) == result.tenants["app0"].rate_limited
    assert all(i.actor == "app0" for i in instants)


# -- EDF and strict-priority dispatch ------------------------------------------


def run_overloaded(discipline, *, deadlines=(None, None), priorities=(1, 1)):
    system = shared_card_system()
    tenants = [
        TenantSpec(
            name=f"app{i}", arrivals=DeterministicArrivals(100.0),
            n_requests=20, queue_capacity=64,
            deadline_s=deadlines[i], priority=priorities[i],
        )
        for i in range(2)
    ]
    frontend = ServingFrontend(
        system, tenants,
        FrontendConfig(
            max_inflight=1, shed=ShedPolicy.QUEUE, discipline=discipline
        ),
        seed=2,
    )
    return frontend.run()


def test_edf_moves_tight_deadline_tenant_ahead():
    deadlines = (0.5, 0.01)  # app1's budget is 50x tighter
    fcfs = run_overloaded(Discipline.FCFS, deadlines=deadlines)
    edf = run_overloaded(Discipline.EDF, deadlines=deadlines)
    # Everything still completes; only the order changes.
    assert edf.completed == fcfs.completed == 40
    fcfs_wait = fcfs.tenants["app1"].queue_wait.mean()
    edf_wait = edf.tenants["app1"].queue_wait.mean()
    assert edf_wait < fcfs_wait
    # The preference is relative: the tight tenant now waits less than
    # its slack neighbour, which FCFS would never produce here.
    assert (
        edf.tenants["app1"].queue_wait.mean()
        < edf.tenants["app0"].queue_wait.mean()
    )


def test_strict_priority_moves_high_priority_tenant_ahead():
    result = run_overloaded(Discipline.PRIORITY, priorities=(1, 5))
    assert result.completed == 40
    assert (
        result.tenants["app1"].queue_wait.mean()
        < result.tenants["app0"].queue_wait.mean()
    )


def test_disciplines_are_deterministic():
    def digest(discipline):
        result = run_overloaded(
            discipline, deadlines=(0.5, 0.01), priorities=(1, 5)
        )
        return [
            (r.app, r.request_id, r.latency) for r in result.records
        ]

    for discipline in (Discipline.EDF, Discipline.PRIORITY):
        assert digest(discipline) == digest(discipline)


# -- the brownout ladder, end to end -------------------------------------------


BROWNOUT = BrownoutConfig(
    window=16, min_samples=8, min_dwell_s=5e-3, update_period_s=1e-3
)


def run_brownout():
    system = shared_card_system()
    tenants = [
        TenantSpec(name="app0", arrivals=PoissonArrivals(120.0),
                   n_requests=40, priority=0),  # shedding victim
        TenantSpec(name="app1", arrivals=PoissonArrivals(120.0),
                   n_requests=40, priority=1),
    ]
    frontend = ServingFrontend(
        system, tenants,
        FrontendConfig(
            max_inflight=2, shed=ShedPolicy.QUEUE, slo_s=15e-3,
            brownout=BROWNOUT,
        ),
        seed=4,
    )
    return frontend, frontend.run()


def test_overload_climbs_the_full_ladder():
    frontend, result = run_brownout()
    tiers = [tier for _, tier in frontend._brownout.history]
    # Sustained overload: one step at a time, all the way up.
    assert tiers == [
        BrownoutTier.SHED_LOW, BrownoutTier.COALESCE, BrownoutTier.FORCE_CPU,
    ]
    low, high = result.tenants["app0"], result.tenants["app1"]
    # Only the priority-0 tenant is shed at the door, and only after
    # the ladder reached SHED_LOW.
    assert low.brownout_shed > 0
    assert high.brownout_shed == 0
    # At FORCE_CPU, submissions bypass the DRX path: the reroutes are
    # visible per record and as instants.
    forced = sum(1 for r in result.records if r.rerouted)
    assert forced > 0
    instants = {i.name for i in result.telemetry.instants}
    assert {"brownout_tier", "brownout_shed",
            "brownout_force_cpu"} <= instants
    # The tier timeline lands in the metrics registry for artifacts.
    gauge = result.telemetry.metrics.gauge("brownout_tier")
    assert gauge.samples[0][1] == 0.0
    assert gauge.last() == float(BrownoutTier.FORCE_CPU)


def test_brownout_run_is_deterministic():
    def digest():
        frontend, result = run_brownout()
        return (
            [(r.app, r.request_id, r.latency, r.rerouted)
             for r in result.records],
            frontend._brownout.history,
            result.tenants["app0"].brownout_shed,
        )

    assert digest() == digest()
