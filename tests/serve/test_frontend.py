"""The serving frontend: admission, shedding, dispatch, determinism."""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.profiles import WorkProfile
from repro.serve import (
    Discipline,
    FrontendConfig,
    PoissonArrivals,
    ServingFrontend,
    ShedPolicy,
    TenantSpec,
)
from repro.sim import Server, Simulator

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def make_chain(i=0, in_mb=12, out_mb=6):
    profile = WorkProfile(
        name="motion", bytes_in=2 * in_mb * MB, bytes_out=out_mb * MB,
        elements=in_mb * MB // 4, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=5e-3, accel_time_s=1e-3,
                        output_bytes=in_mb * MB),
            MotionStage("m", profile, input_bytes=in_mb * MB,
                        output_bytes=out_mb * MB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=4e-3, accel_time_s=8e-4,
                        output_bytes=MB),
        ],
    )


def build_system(mode=Mode.BUMP_IN_WIRE, n_apps=2):
    return DMXSystem(
        [make_chain(i) for i in range(n_apps)], SystemConfig(mode=mode)
    )


def serve(rate_rps=50.0, n_requests=15, config=None, seed=0, n_apps=2,
          weights=None, mode=Mode.BUMP_IN_WIRE, queue_capacity=16):
    system = build_system(mode=mode, n_apps=n_apps)
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=PoissonArrivals(rate_rps),
            n_requests=n_requests,
            weight=(weights or [1] * n_apps)[i],
            queue_capacity=queue_capacity,
        )
        for i, chain in enumerate(system.chains)
    ]
    frontend = ServingFrontend(
        system, tenants, config or FrontendConfig(), seed=seed
    )
    return system, frontend.run()


def test_all_admitted_requests_complete():
    _, result = serve()
    assert result.arrived == 30
    assert result.admitted + result.shed == result.arrived
    assert result.completed == result.admitted
    assert result.failed == 0
    assert result.elapsed > 0
    assert result.latency.count == result.completed


def test_latency_includes_queue_wait():
    """Client-observed latency is never below the dispatch-side latency."""
    _, result = serve(rate_rps=400.0, n_requests=30,
                      config=FrontendConfig(max_inflight=1,
                                            shed=ShedPolicy.QUEUE))
    for stats in result.tenants.values():
        assert stats.queue_wait.max > 0  # overload: someone queued
        assert stats.latency.max >= stats.queue_wait.max


def test_reject_policy_sheds_and_queue_policy_absorbs():
    overload = dict(rate_rps=2000.0, n_requests=40)
    _, rejected = serve(
        config=FrontendConfig(max_inflight=1, shed=ShedPolicy.REJECT),
        queue_capacity=2, **overload,
    )
    assert rejected.shed > 0
    assert rejected.completed == rejected.admitted
    _, queued = serve(
        config=FrontendConfig(max_inflight=1, shed=ShedPolicy.QUEUE),
        queue_capacity=2, **overload,
    )
    assert queued.shed == 0
    assert queued.completed == queued.arrived
    # Shedding trades completions for tail latency.
    assert rejected.percentile(0.99) < queued.percentile(0.99)


def test_slo_violations_counted():
    _, result = serve(rate_rps=2000.0, n_requests=40,
                      config=FrontendConfig(max_inflight=1,
                                            shed=ShedPolicy.QUEUE,
                                            slo_s=10e-3))
    assert result.violations > 0
    assert result.goodput_rps() < result.completed / result.elapsed


def test_wrr_weights_favor_heavy_tenant():
    """Under sustained overload the heavy tenant's queue drains first."""
    config = FrontendConfig(max_inflight=1, shed=ShedPolicy.QUEUE,
                            discipline=Discipline.WRR)
    _, result = serve(rate_rps=2000.0, n_requests=40, config=config,
                      weights=[4, 1])
    heavy = result.tenants["app0"].queue_wait
    light = result.tenants["app1"].queue_wait
    assert heavy.mean() < light.mean()


def test_fcfs_orders_by_arrival_across_tenants():
    _, result = serve(rate_rps=800.0, n_requests=30,
                      config=FrontendConfig(max_inflight=1,
                                            shed=ShedPolicy.QUEUE,
                                            discipline=Discipline.FCFS))
    # FCFS shares delay: per-tenant mean queue waits are comparable.
    waits = [t.queue_wait.mean() for t in result.tenants.values()]
    assert max(waits) < 2.0 * min(waits)


def test_same_seed_identical_serve_result():
    _, first = serve(seed=13)
    _, second = serve(seed=13)
    assert first.to_dict() == second.to_dict()
    _, other = serve(seed=14)
    assert first.to_dict() != other.to_dict()


def test_queue_timeline_sampled_on_sim_clock():
    _, result = serve(rate_rps=2000.0, n_requests=40,
                      config=FrontendConfig(max_inflight=1,
                                            shed=ShedPolicy.QUEUE,
                                            sample_period_s=1e-3))
    assert len(result.timeline) > 2
    times = [s.time for s in result.timeline]
    assert times == sorted(times)
    assert result.max_queue_depth() > 0
    assert result.mean_queue_depth() <= result.max_queue_depth()


def test_utilization_stays_bounded_under_serving_frontend():
    """Regression: no Server exceeds utilization 1.0, including the
    capacity>1 resources (host CPU cores, multi-lane fabric links)."""
    system, result = serve(rate_rps=2000.0, n_requests=40,
                           config=FrontendConfig(max_inflight=8,
                                                 shed=ShedPolicy.QUEUE))
    for device in system.accel_devices.values():
        assert 0.0 <= device.utilization() <= 1.0
    for drx in system.drx_devices.values():
        assert 0.0 <= drx.utilization() <= 1.0
    for link in system.fabric.links:
        assert 0.0 <= link.utilization() <= 1.0
    assert 0.0 <= system.cpu.utilization() <= 1.0


def test_server_utilization_capped_for_multi_capacity():
    """A capacity-2 server at full occupancy reports utilization 1.0,
    not 2.0 (the busy integral is normalized by capacity)."""
    sim = Simulator()
    server = Server(sim, capacity=2, name="dual")
    for _ in range(2):
        sim.spawn(server.transfer(1.0))
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert server.utilization() == pytest.approx(1.0)
    assert server.utilization() <= 1.0


def test_frontend_rejects_bad_configs():
    system = build_system()
    tenants = [TenantSpec(name="app0", arrivals=PoissonArrivals(1.0),
                          n_requests=1)]
    with pytest.raises(ValueError, match="at least one tenant"):
        ServingFrontend(system, [])
    with pytest.raises(KeyError):
        ServingFrontend(
            system,
            [TenantSpec(name="ghost", arrivals=PoissonArrivals(1.0),
                        n_requests=1)],
        )
    with pytest.raises(ValueError, match="unique"):
        ServingFrontend(system, tenants * 2)
    frontend = ServingFrontend(system, tenants)
    frontend.run()
    with pytest.raises(RuntimeError, match="once"):
        frontend.run()
    with pytest.raises(ValueError, match="fresh system"):
        ServingFrontend(system, tenants)
    with pytest.raises(ValueError):
        FrontendConfig(max_inflight=0)
    with pytest.raises(ValueError):
        FrontendConfig(slo_s=0.0)
    with pytest.raises(ValueError):
        TenantSpec(name="t", arrivals=PoissonArrivals(1.0), n_requests=0)
    with pytest.raises(ValueError):
        TenantSpec(name="t", arrivals=PoissonArrivals(1.0), n_requests=1,
                   weight=0)
