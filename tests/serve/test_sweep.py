"""Load sweeps: knee queries, determinism, fault integration."""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import AppChain, KernelStage, Mode, MotionStage
from repro.faults import FaultPlan, FaultPolicy
from repro.profiles import WorkProfile
from repro.serve import (
    ShedPolicy,
    SweepConfig,
    SweepPoint,
    SweepResult,
    calibrate_peak_rps,
    run_sweep,
    unloaded_latency,
)

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def make_chain(i=0, in_mb=12, out_mb=6):
    profile = WorkProfile(
        name="motion", bytes_in=2 * in_mb * MB, bytes_out=out_mb * MB,
        elements=in_mb * MB // 4, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=5e-3, accel_time_s=1e-3,
                        output_bytes=in_mb * MB),
            MotionStage("m", profile, input_bytes=in_mb * MB,
                        output_bytes=out_mb * MB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=4e-3, accel_time_s=8e-4,
                        output_bytes=MB),
        ],
    )


def factory():
    return [make_chain(i) for i in range(2)]


def small_config(**overrides):
    defaults = dict(
        offered_loads_rps=(40.0, 160.0),
        chain_factory=factory,
        requests_per_tenant=10,
        slo_s=50e-3,
        modes=(Mode.MULTI_AXL, Mode.BUMP_IN_WIRE),
        sample_period_s=None,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


def test_sweep_covers_the_grid():
    config = small_config()
    result = run_sweep(config)
    assert len(result.points) == 4  # 2 modes x 2 loads
    for mode in config.modes:
        curve = result.p99_curve(mode)
        assert [load for load, _ in curve] == [40.0, 160.0]
        assert all(p99 > 0 for _, p99 in curve)


def test_same_seed_byte_identical_sweep():
    config = small_config()
    first = run_sweep(config)
    second = run_sweep(config)
    assert first.to_json() == second.to_json()


def test_different_seed_changes_the_sweep():
    first = run_sweep(small_config(seed=1))
    second = run_sweep(small_config(seed=2))
    assert first.to_json() != second.to_json()


def test_knee_rps_scans_to_first_violation():
    result = SweepResult(slo_s=10e-3, seed=0)

    def point(mode, load, p99):
        return SweepPoint(
            mode=mode, offered_rps=load, p50_s=p99, p95_s=p99, p99_s=p99,
            mean_s=p99, mean_queue_wait_s=0.0, goodput_rps=load,
            completed=1, shed=0, violations=0, failed=0,
            max_queue_depth=0, elapsed_s=1.0,
        )

    result.points = [
        point("dmx", 100.0, 5e-3),
        point("dmx", 200.0, 8e-3),
        point("dmx", 400.0, 20e-3),   # first violation
        point("dmx", 800.0, 9e-3),    # past the break: ignored
        point("cpu", 100.0, 20e-3),   # violates immediately
    ]
    assert result.knee_rps("dmx") == 200.0
    assert result.knee_rps("cpu") == 0.0
    assert result.modes() == ["dmx", "cpu"]


def test_sweep_with_faults_armed_completes_and_replays():
    plan = FaultPlan(
        seed=42,
        dma=FaultPolicy(fail_p=0.10),
        drx=FaultPolicy(hang_p=0.05),
        drx_deadline_s=30e-3,
    )
    config = small_config(
        offered_loads_rps=(40.0,), modes=(Mode.STANDALONE,), faults=plan,
        slo_s=100e-3,
    )
    result = run_sweep(config)
    point = result.points[0]
    assert point.completed == 20  # nothing lost under faults
    assert run_sweep(config).to_json() == result.to_json()


def test_shedding_sweep_counts_rejections():
    config = small_config(
        offered_loads_rps=(4000.0,), modes=(Mode.MULTI_AXL,),
        shed=ShedPolicy.REJECT, queue_capacity=2, max_inflight=1,
        requests_per_tenant=25,
    )
    point = run_sweep(config).points[0]
    assert point.shed > 0
    assert point.completed + point.shed == 50


def test_calibration_helpers_order_sanely():
    config = small_config()
    dmx_peak = calibrate_peak_rps(config, Mode.BUMP_IN_WIRE)
    axl_peak = calibrate_peak_rps(config, Mode.MULTI_AXL)
    assert dmx_peak > axl_peak > 0
    dmx_floor = unloaded_latency(config, Mode.BUMP_IN_WIRE)
    axl_floor = unloaded_latency(config, Mode.MULTI_AXL)
    assert 0 < dmx_floor < axl_floor


def test_config_validation():
    with pytest.raises(ValueError, match="at least one offered load"):
        SweepConfig(offered_loads_rps=())
    with pytest.raises(ValueError, match="ascending"):
        SweepConfig(offered_loads_rps=(100.0, 50.0))
    with pytest.raises(ValueError, match="positive"):
        SweepConfig(offered_loads_rps=(-1.0,))
    with pytest.raises(ValueError):
        SweepConfig(offered_loads_rps=(1.0,), slo_s=0.0)
    with pytest.raises(ValueError):
        SweepConfig(offered_loads_rps=(1.0,), modes=())
