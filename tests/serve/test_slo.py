"""Streaming percentile estimators and SLO accounting units."""

import random

import pytest

from repro.serve import LatencyTracker, P2Quantile, TenantStats


def test_p2_exact_below_five_samples():
    est = P2Quantile(0.5)
    for x in (5.0, 1.0, 3.0):
        est.add(x)
    assert est.value == pytest.approx(3.0)


def test_p2_tracks_uniform_median():
    rng = random.Random(0)
    est = P2Quantile(0.5)
    for _ in range(5000):
        est.add(rng.random())
    assert est.value == pytest.approx(0.5, abs=0.05)


def test_p2_tracks_tail_quantile_of_exponential():
    rng = random.Random(1)
    est = P2Quantile(0.95)
    samples = []
    for _ in range(20000):
        x = rng.expovariate(1.0)
        est.add(x)
        samples.append(x)
    exact = sorted(samples)[int(0.95 * len(samples))]
    assert est.value == pytest.approx(exact, rel=0.1)


def test_p2_rejects_degenerate_quantiles_and_empty_stream():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)
    with pytest.raises(ValueError):
        _ = P2Quantile(0.5).value


def test_tracker_exact_percentiles_when_retained():
    tracker = LatencyTracker()
    for x in range(1, 101):
        tracker.add(float(x))
    assert tracker.percentile(0.50) == pytest.approx(50.5)
    assert tracker.percentile(0.99) == pytest.approx(99.01)
    assert tracker.mean() == pytest.approx(50.5)
    assert tracker.max == 100.0
    # Arbitrary quantiles work in retained mode.
    assert tracker.percentile(0.25) == pytest.approx(25.75)


def test_tracker_streaming_mode_bounds_memory():
    tracker = LatencyTracker(retain=False)
    rng = random.Random(2)
    for _ in range(10000):
        tracker.add(rng.expovariate(1.0))
    assert tracker._samples is None
    # Tracked quantiles answer from P2; untracked ones raise.
    assert tracker.percentile(0.5) > 0
    with pytest.raises(KeyError):
        tracker.percentile(0.25)


def test_tracker_streaming_estimate_close_to_exact():
    tracker = LatencyTracker()
    rng = random.Random(3)
    for _ in range(20000):
        tracker.add(rng.expovariate(1.0))
    for q in (0.5, 0.95, 0.99):
        assert tracker.streaming_estimate(q) == pytest.approx(
            tracker.percentile(q), rel=0.15
        )


def test_tracker_summary_and_errors():
    tracker = LatencyTracker()
    with pytest.raises(ValueError):
        tracker.mean()
    with pytest.raises(ValueError):
        tracker.percentile(0.5)
    with pytest.raises(ValueError):
        tracker.add(-1.0)
    tracker.add(2.0)
    summary = tracker.summary()
    assert summary["count"] == 1.0
    assert summary["p99"] == 2.0


def test_tenant_stats_goodput_excludes_failures_and_violations():
    stats = TenantStats(name="t", completed=10, failed=2, violations=3)
    assert stats.goodput_rps(5.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        stats.goodput_rps(0.0)


def _depth_result(samples, elapsed):
    from repro.serve.slo import LatencyTracker, QueueSample, ServeResult

    return ServeResult(
        tenants={},
        latency=LatencyTracker(),
        timeline=[
            QueueSample(time=t, queued={"a": depth}, inflight=0)
            for t, depth in samples
        ],
        elapsed=elapsed,
    )


def test_mean_queue_depth_is_time_weighted_under_uneven_spacing():
    # Depth 10 holds for 1s, depth 0 for 9s: the time-weighted mean is
    # 1.0, but dense sampling of the busy second (unweighted mean 6.7)
    # used to drag the old estimate toward the burst.
    result = _depth_result(
        [(0.0, 10), (0.5, 10), (1.0, 0), (10.0, 0)], elapsed=10.0
    )
    assert result.mean_queue_depth() == pytest.approx(1.0)
    assert result.mean_sampled_queue_depth() == pytest.approx(5.0)


def test_mean_queue_depth_extends_last_sample_to_elapsed():
    result = _depth_result([(0.0, 4), (1.0, 2)], elapsed=4.0)
    # 4 for 1s, then 2 for the remaining 3s.
    assert result.mean_queue_depth() == pytest.approx((4 + 2 * 3) / 4)


def test_mean_queue_depth_empty_and_single_sample():
    assert _depth_result([], elapsed=1.0).mean_queue_depth() == 0.0
    single = _depth_result([(0.0, 3)], elapsed=0.0)
    # Zero span: falls back to the plain average.
    assert single.mean_queue_depth() == pytest.approx(3.0)


def test_tracker_percentile_cache_survives_interleaved_adds():
    """The cached sorted view must be invalidated by every add, so
    percentile-query/add interleavings always answer from fresh data."""
    from repro.sim.tracing import exact_percentile

    rng = random.Random(11)
    tracker = LatencyTracker()
    shadow = []
    for _ in range(200):
        x = rng.expovariate(1.0)
        tracker.add(x)
        shadow.append(x)
        if len(shadow) % 7 == 0:
            for q in (0.5, 0.95, 0.99):
                assert tracker.percentile(q) == pytest.approx(
                    exact_percentile(sorted(shadow), q)
                )
    # Repeated queries with no adds in between reuse the cached sort.
    first = tracker.percentile(0.99)
    assert tracker.percentile(0.99) == first
