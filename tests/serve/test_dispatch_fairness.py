"""Dispatch-fairness regressions the COALESCE tier was hiding.

The brownout ``COALESCE`` tier's tenant-affinity fast path used to pop
the last-served tenant's queue unconditionally: no run-length cap (one
backlogged tenant starved everyone, including higher-priority and
earlier-deadline work) and no WRR credit accounting (a brownout episode
corrupted fairness state that persisted after de-escalation). These
tests fail against that ``_next_item`` and pin the fixed behavior, plus
two admission-side audits from the same review: the EDF deadline offset
is resolved per arrival (not frozen at arrival-loop start), and
``ShedPolicy.QUEUE`` ignoring ``queue_capacity`` is deliberate.
"""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.profiles import WorkProfile
from repro.resilience import BrownoutConfig, BrownoutTier
from repro.serve import (
    Discipline,
    FrontendConfig,
    ServingFrontend,
    ShedPolicy,
    TenantSpec,
)
from repro.serve.arrivals import DeterministicArrivals
from repro.serve.frontend import _Admitted

KB = 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

#: A brownout config that never moves on its own: the dwell time exceeds
#: any run here, so forcing the tier by hand gives a stable COALESCE
#: episode to test dispatch under.
FROZEN_BROWNOUT = BrownoutConfig(
    window=16, min_samples=16, min_dwell_s=1e9, update_period_s=1.0
)


def make_chain(i=0, accel_time_s=2e-6, cpu_time_s=30e-6):
    profile = WorkProfile(
        name="motion", bytes_in=16 * KB, bytes_out=8 * KB,
        elements=16384, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=cpu_time_s,
                        accel_time_s=accel_time_s, output_bytes=16 * KB),
            MotionStage("m", profile, input_bytes=16 * KB,
                        output_bytes=8 * KB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=24e-6, accel_time_s=2e-6,
                        output_bytes=4 * KB),
        ],
    )


def coalescing_frontend(tenants, discipline, max_affinity_run=None):
    """A frontend pinned at the COALESCE tier (ladder frozen)."""
    system = DMXSystem(
        [make_chain(i) for i in range(len(tenants))],
        SystemConfig(mode=Mode.STANDALONE),
    )
    frontend = ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=1, discipline=discipline, slo_s=1e-3,
            sample_period_s=None, brownout=FROZEN_BROWNOUT,
            max_affinity_run=max_affinity_run,
        ),
    )
    frontend._brownout.tier = BrownoutTier.COALESCE
    return frontend


def spec(name, **kwargs):
    kwargs.setdefault("arrivals", DeterministicArrivals(1.0))
    kwargs.setdefault("n_requests", 1)
    return TenantSpec(name=name, **kwargs)


def enqueue(frontend, tenant, n, start_seq=0):
    tenant_spec = frontend._tenant_spec[tenant]
    for seq in range(start_seq, start_seq + n):
        frontend._queues[tenant].append(
            _Admitted(tenant_spec, frontend.sim.now, seq)
        )


def dispatch_sequence(frontend, n):
    """Drive ``_next_item`` with the dispatch loop's own bookkeeping."""
    out = []
    for _ in range(n):
        item = frontend._next_item()
        if item is None:
            break
        if item.spec.name == frontend._last_tenant:
            frontend._affinity_run += 1
        else:
            frontend._affinity_run = 1
        frontend._last_tenant = item.spec.name
        out.append(item.spec.name)
    return out


# -- the affinity run is capped ------------------------------------------------


def test_affinity_run_cannot_starve_higher_priority_work():
    # app0 (low priority) establishes affinity with a deep backlog; once
    # app1 (high priority) has work, the capped fast path must yield to
    # the discipline within max_affinity_run dispatches. The uncapped
    # path dispatched app0's entire backlog first.
    frontend = coalescing_frontend(
        [spec("app0", priority=1), spec("app1", priority=5)],
        Discipline.PRIORITY, max_affinity_run=2,
    )
    enqueue(frontend, "app0", 10)
    assert dispatch_sequence(frontend, 2) == ["app0", "app0"]
    enqueue(frontend, "app1", 2)
    assert dispatch_sequence(frontend, 1) == ["app1"], (
        "affinity run at its cap must fall through to strict priority"
    )


def test_affinity_cap_defaults_to_tenant_weight():
    # No explicit max_affinity_run: the cap falls back to the tenant's
    # WRR weight, so app0 (weight=3) gets a run of three before the
    # fast path yields to the higher-priority tenant.
    frontend = coalescing_frontend(
        [spec("app0", weight=3, priority=1), spec("app1", priority=5)],
        Discipline.PRIORITY,
    )
    enqueue(frontend, "app0", 10)
    assert dispatch_sequence(frontend, 1) == ["app0"]
    enqueue(frontend, "app1", 2)
    assert dispatch_sequence(frontend, 3) == ["app0", "app0", "app1"]


def test_starved_tenant_bounded_wait_end_to_end():
    # End to end under the pinned COALESCE tier: a flood tenant cannot
    # hold the single dispatch slot for its whole backlog once the
    # high-priority tenant's requests land.
    flood = spec(
        "app0", priority=1, n_requests=60,
        arrivals=DeterministicArrivals(1e6), queue_capacity=64,
    )
    paced = spec(
        "app1", priority=5, n_requests=5,
        arrivals=DeterministicArrivals(5e4), queue_capacity=64,
    )
    frontend = coalescing_frontend(
        [flood, paced], Discipline.PRIORITY, max_affinity_run=2
    )
    result = frontend.run()
    assert result.completed == 65
    # The uncapped path made app1 wait behind ~all 60 flood requests
    # (several ms); capped, it waits behind at most a few.
    assert result.tenants["app1"].queue_wait.max < 1e-3


# -- affinity dispatch is WRR-credit honest ------------------------------------


def test_wrr_shares_hold_under_coalesce():
    frontend = coalescing_frontend(
        [spec("app0", weight=2), spec("app1", weight=1)], Discipline.WRR
    )
    enqueue(frontend, "app0", 20)
    enqueue(frontend, "app1", 20)
    seq = dispatch_sequence(frontend, 9)
    # 2:1 weights must survive the affinity fast path: the uncapped,
    # credit-blind path gave app0 all nine.
    assert seq.count("app0") == 6
    assert seq.count("app1") == 3


def test_wrr_shares_recover_after_coalesce_episode():
    frontend = coalescing_frontend(
        [spec("app0", weight=2), spec("app1", weight=1)], Discipline.WRR
    )
    enqueue(frontend, "app0", 20)
    enqueue(frontend, "app1", 20)
    dispatch_sequence(frontend, 6)  # the COALESCE episode
    frontend._brownout.tier = BrownoutTier.NORMAL
    seq = dispatch_sequence(frontend, 6)
    # Credit state was debited honestly during the episode, so shares
    # after de-escalation are exactly the configured 2:1.
    assert seq.count("app0") == 4
    assert seq.count("app1") == 2


# -- admission-side audits -----------------------------------------------------


def test_deadline_offset_resolved_per_arrival():
    # An SLO change mid-run must reach subsequent arrivals' EDF
    # deadlines; the old arrival loop resolved the offset once at loop
    # start and froze it.
    system = DMXSystem(
        [make_chain(0, accel_time_s=20e-3, cpu_time_s=30e-3)],
        SystemConfig(mode=Mode.STANDALONE),
    )
    frontend = ServingFrontend(
        system,
        [spec("app0", n_requests=10,
              arrivals=DeterministicArrivals(1e4), queue_capacity=32)],
        FrontendConfig(
            max_inflight=1, discipline=Discipline.EDF, slo_s=1e-3,
            sample_period_s=None,
        ),
    )

    def retune_slo():
        yield system.sim.timeout(450e-6)
        object.__setattr__(frontend.config, "slo_s", 5e-3)

    captured = []

    def probe():
        yield system.sim.timeout(1.05e-3)
        captured.extend(
            (item.arrival, item.deadline)
            for item in frontend._queues["app0"]
        )

    system.sim.spawn(retune_slo())
    system.sim.spawn(probe())
    frontend.run()
    early = [(a, d) for a, d in captured if a <= 450e-6]
    late = [(a, d) for a, d in captured if a > 450e-6]
    assert early and late, "probe must straddle the SLO change"
    for arrival, deadline in early:
        assert deadline - arrival == pytest.approx(1e-3)
    for arrival, deadline in late:
        assert deadline - arrival == pytest.approx(5e-3)


def test_queue_policy_deliberately_ignores_capacity():
    # ShedPolicy.QUEUE admits unconditionally: queue_capacity=2 is not
    # enforced (documented design — latency absorbs overload, so knee
    # sweeps see the tail rather than a shed cliff).
    system = DMXSystem([make_chain(0)], SystemConfig(mode=Mode.STANDALONE))
    frontend = ServingFrontend(
        system,
        [spec("app0", n_requests=20,
              arrivals=DeterministicArrivals(1e6), queue_capacity=2)],
        FrontendConfig(
            max_inflight=1, shed=ShedPolicy.QUEUE,
            sample_period_s=20e-6,
        ),
    )
    result = frontend.run()
    assert result.shed == 0
    assert result.admitted == 20
    assert result.completed == 20
    assert result.max_queue_depth() > 2


# -- live WRR weights ----------------------------------------------------------


def wrr_frontend(tenants):
    """A plain WRR frontend (no brownout) for live-weight tests."""
    system = DMXSystem(
        [make_chain(i) for i in range(len(tenants))],
        SystemConfig(mode=Mode.STANDALONE),
    )
    return ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=1, discipline=Discipline.WRR, slo_s=1e-3,
            sample_period_s=None,
        ),
    )


def test_mid_run_weight_change_takes_effect_at_cursor_advance():
    """Failing-first for the frozen-weight cursor: WRR credit used to
    refresh from the immutable ``TenantSpec.weight``, so a mid-run
    weight change never reached dispatch."""
    frontend = wrr_frontend([spec("app0"), spec("app1")])
    enqueue(frontend, "app0", 30)
    enqueue(frontend, "app1", 30)
    assert dispatch_sequence(frontend, 4) == [
        "app0", "app1", "app0", "app1",
    ]
    frontend.set_weight("app0", 3)
    seq = dispatch_sequence(frontend, 8)
    # Shares shift to 3:1 from the next cursor advance onto app0.
    assert seq.count("app0") == 6
    assert seq.count("app1") == 2


def test_weight_change_never_retroactively_grows_a_credit_run():
    frontend = wrr_frontend([spec("app0", weight=2), spec("app1")])
    enqueue(frontend, "app0", 30)
    enqueue(frontend, "app1", 30)
    assert dispatch_sequence(frontend, 1) == ["app0"]  # credit 2 -> 1
    frontend.set_weight("app0", 5)
    # The in-progress run still finishes at the *old* credit; the new
    # weight lands at the next cursor pass.
    assert dispatch_sequence(frontend, 2) == ["app0", "app1"]
    assert dispatch_sequence(frontend, 6) == ["app0"] * 5 + ["app1"]


def test_set_weight_validates():
    frontend = wrr_frontend([spec("app0"), spec("app1")])
    with pytest.raises(KeyError):
        frontend.set_weight("ghost", 2)
    with pytest.raises(ValueError):
        frontend.set_weight("app0", 0)
    frontend.set_weight("app0", 4)
    assert frontend.weight("app0") == 4
