"""Batch formation and coalesced execution: determinism, identity, faults.

The serving-side contract of ``repro.serve.batching``:

* the :class:`BatchFormer` seals on size or window, freezes a batch's
  terms at open time, and is driven purely by the DES clock (seeded runs
  replay byte-for-byte with batching armed);
* ``BatchingConfig(max_batch=1, window_s=0)`` degenerates to the exact
  per-request dispatch path (identical ``ServeResult``);
* formation delay never exceeds the window;
* a faulted batch retries / falls back *as a unit* — no member is lost;
* ``DMXSystem.submit_batch`` reconciles its phase books with the span
  tree in every placement mode, and ``count=1`` is bit-identical to
  ``submit``.
"""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.faults import FaultPlan, FaultPolicy
from repro.profiles import WorkProfile
from repro.serve import (
    BatchFormer,
    BatchingConfig,
    FrontendConfig,
    PoissonArrivals,
    ServingFrontend,
    TenantSpec,
)
from repro.serve.frontend import _Admitted
from repro.sim import Simulator
from repro.telemetry import phase_totals

KB = 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def make_chain(i=0):
    """Small RPC-style chain (fast to simulate, control-path heavy)."""
    profile = WorkProfile(
        name="motion", bytes_in=16 * KB, bytes_out=8 * KB,
        elements=16384, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=30e-6, accel_time_s=2e-6,
                        output_bytes=16 * KB),
            MotionStage("m", profile, input_bytes=16 * KB,
                        output_bytes=8 * KB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=24e-6, accel_time_s=2e-6,
                        output_bytes=4 * KB),
        ],
    )


def build_system(mode=Mode.STANDALONE, n_apps=2, faults=None):
    return DMXSystem(
        [make_chain(i) for i in range(n_apps)],
        SystemConfig(mode=mode),
        faults=faults,
    )


def serve(batching, rate_rps=200e3, n_requests=40, seed=0, faults=None,
          slo_s=1e-3, max_inflight=8):
    system = build_system(faults=faults)
    tenants = [
        TenantSpec(
            name=f"app{i}",
            arrivals=PoissonArrivals(rate_rps / 2),
            n_requests=n_requests,
        )
        for i in range(2)
    ]
    frontend = ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=max_inflight, slo_s=slo_s,
            sample_period_s=None, batching=batching,
        ),
        seed=seed,
    )
    return frontend.run()


# -- BatchFormer ---------------------------------------------------------------


class FormerHarness:
    def __init__(self):
        self.sim = Simulator()
        self.launched = []
        self.former = BatchFormer(self.sim, self.launched.append)

    def admitted(self, seq, tenant="app0"):
        spec = TenantSpec(
            name=tenant, arrivals=PoissonArrivals(1.0), n_requests=1
        )
        return _Admitted(spec, self.sim.now, seq)


def test_former_seals_on_size():
    h = FormerHarness()
    for seq in range(3):
        h.former.add(h.admitted(seq), max_batch=3, window_s=1.0)
    assert len(h.launched) == 1
    batch = h.launched[0]
    assert batch.sealed_by == "size"
    assert [m.seq for m in batch.members] == [0, 1, 2]
    assert h.former.sealed_by_size == 1
    assert not h.former.is_forming("app0")


def test_former_seals_on_window():
    h = FormerHarness()
    h.former.add(h.admitted(0), max_batch=8, window_s=5e-3)
    assert h.former.is_forming("app0")
    assert not h.launched
    h.sim.run()
    assert h.sim.now == pytest.approx(5e-3)
    assert len(h.launched) == 1
    assert h.launched[0].sealed_by == "window"
    assert h.former.sealed_by_window == 1


def test_former_terms_frozen_at_open():
    # Terms passed while *joining* are ignored: the batch opened with
    # max_batch=2 seals at two members even though the second add asks
    # for a bigger cap.
    h = FormerHarness()
    h.former.add(h.admitted(0), max_batch=2, window_s=1.0)
    h.former.add(h.admitted(1), max_batch=100, window_s=9.0)
    assert len(h.launched) == 1
    assert h.launched[0].max_batch == 2


def test_former_tracks_tenants_independently():
    h = FormerHarness()
    h.former.add(h.admitted(0, "app0"), max_batch=2, window_s=1.0)
    h.former.add(h.admitted(0, "app1"), max_batch=2, window_s=1.0)
    assert h.former.forming_count() == 2
    h.former.add(h.admitted(1, "app0"), max_batch=2, window_s=1.0)
    assert len(h.launched) == 1
    assert h.launched[0].tenant == "app0"
    assert h.former.is_forming("app1")


def test_former_rejects_bad_terms():
    h = FormerHarness()
    with pytest.raises(ValueError):
        h.former.add(h.admitted(0), max_batch=0, window_s=1.0)
    with pytest.raises(ValueError):
        BatchingConfig(max_batch=0)
    with pytest.raises(ValueError):
        BatchingConfig(window_s=-1.0)
    with pytest.raises(ValueError):
        BatchingConfig(coalesce_window_factor=0.5)


# -- determinism and identity --------------------------------------------------


BATCHING = BatchingConfig(max_batch=4, window_s=100e-6)


def test_batched_serving_is_deterministic():
    first = serve(BATCHING, seed=3)
    second = serve(BATCHING, seed=3)
    assert first.to_dict() == second.to_dict()
    assert [r.latency for r in first.records] == [
        r.latency for r in second.records
    ]
    assert sum(t.batches for t in first.tenants.values()) > 0


def test_degenerate_batching_matches_per_request_path():
    """max_batch=1 + zero window = the exact unbatched dispatch path."""
    off = serve(None, seed=5).to_dict()
    on = serve(BatchingConfig(max_batch=1, window_s=0.0), seed=5).to_dict()
    for report in (off, on):
        for tenant in report["tenants"].values():
            tenant.pop("batches")
    assert on == off


def test_formation_delay_bounded_by_window():
    result = serve(BATCHING, seed=1)
    gauge = result.telemetry.metrics.gauge("batch_formation_delay_s")
    assert gauge.samples
    assert gauge.max() <= BATCHING.window_s + 1e-12
    # Every admitted request completed through some batch.
    sizes = result.telemetry.metrics.histogram("batch_size")
    assert sizes.count == sum(t.batches for t in result.tenants.values())
    assert sizes.sum == result.completed


# -- fault composition ---------------------------------------------------------


def test_faulted_batches_fall_back_without_losing_members():
    plan = FaultPlan(
        seed=3,
        drx=FaultPolicy(fail_p=0.4, hang_p=0.2),
        drx_deadline_s=200e-6,
    )
    result = serve(BATCHING, seed=2, faults=plan, slo_s=10e-3)
    # Every admitted member completes (fallback answers it, never drops
    # it), and whole batches degrade together.
    assert result.completed == result.admitted == 80
    assert result.failed == 0
    assert len(result.records) == 80
    fallbacks = sum(1 for r in result.records if r.fell_back)
    assert fallbacks > 0
    assert sum(t.batches for t in result.tenants.values()) > 0


def test_faulted_batched_serving_replays_exactly():
    plan = FaultPlan(seed=9, drx=FaultPolicy(fail_p=0.3),
                     drx_deadline_s=200e-6)
    first = serve(BATCHING, seed=4, faults=plan, slo_s=10e-3)
    second = serve(BATCHING, seed=4, faults=plan, slo_s=10e-3)
    assert first.to_dict() == second.to_dict()


# -- submit_batch: the system-level contract -----------------------------------


def run_batch(mode, count):
    system = build_system(mode=mode)
    records = []

    def client():
        records.extend((yield from system.submit_batch(0, count)))

    system.sim.spawn(client())
    system.sim.run()
    return system, records


@pytest.mark.parametrize("mode", list(Mode))
def test_submit_batch_reconciles_phase_books_in_every_mode(mode):
    system, records = run_batch(mode, 3)
    assert len(records) == 3
    assert all(not r.failed for r in records)
    want = {}
    for record in records:
        for phase, seconds in record.phases.items():
            want[phase] = want.get(phase, 0.0) + seconds
    got = phase_totals(system.telemetry.spans)
    for phase, seconds in want.items():
        if seconds:
            assert got.get(phase, 0.0) == pytest.approx(
                seconds, abs=1e-9
            ), f"{mode.value}:{phase}"


@pytest.mark.parametrize("mode", [Mode.STANDALONE, Mode.MULTI_AXL,
                                  Mode.PCIE_INTEGRATED])
def test_submit_batch_of_one_is_identical_to_submit(mode):
    _, batch_records = run_batch(mode, 1)
    system = build_system(mode=mode)
    solo = []

    def client():
        solo.append((yield from system.submit(0)))

    system.sim.spawn(client())
    system.sim.run()
    assert batch_records[0].latency == solo[0].latency
    assert batch_records[0].phases == solo[0].phases


def test_submit_batch_validates_count():
    system = build_system()
    with pytest.raises(ValueError):
        system.sim.spawn(system.submit_batch(0, 0))
        system.sim.run()


# -- size-aware formation windows ----------------------------------------------


def test_size_aware_window_config_validates():
    with pytest.raises(ValueError):
        BatchingConfig(size_aware=True, rate_window=1)
    cfg = BatchingConfig(size_aware=True)
    assert cfg.rate_window >= 2


def test_low_rate_tenants_stop_paying_the_full_window():
    """A tenant arriving slower than the window can fill stops idling
    out ``window_s`` on every singleton batch — the size-aware former
    seals as soon as the rate estimate says nobody else is coming."""
    window = BatchingConfig(max_batch=8, window_s=2e-3)
    aware = BatchingConfig(max_batch=8, window_s=2e-3, size_aware=True)
    # 100 rps per tenant: interarrivals ~10 ms >> the 2 ms window, so a
    # fixed window is pure added latency on every request.
    fixed = serve(window, rate_rps=200.0, n_requests=25, slo_s=None)
    sized = serve(aware, rate_rps=200.0, n_requests=25, slo_s=None)
    assert fixed.completed == sized.completed == 50
    assert sized.latency.mean() < fixed.latency.mean() / 2
    # The fixed run pays ~window_s of formation delay per request; the
    # size-aware run pays (almost) none once the estimator warms up.
    assert fixed.latency.mean() > window.window_s / 2
    assert sized.latency.mean() < window.window_s / 4


def test_size_aware_batching_is_deterministic():
    aware = BatchingConfig(max_batch=4, window_s=100e-6, size_aware=True)
    first = serve(aware, seed=7)
    second = serve(aware, seed=7)
    assert first.to_dict() == second.to_dict()


def test_size_aware_off_is_the_exact_fixed_window_path():
    """size_aware defaults off; the flag set to False changes nothing."""
    off = serve(BATCHING, seed=3).to_dict()
    explicit = serve(
        BatchingConfig(max_batch=4, window_s=100e-6, size_aware=False),
        seed=3,
    ).to_dict()
    assert off == explicit


def test_size_aware_high_rate_batches_still_fill():
    """At rates where batches size-out, shrinking the window must not
    break batching itself — batches still coalesce members."""
    aware = BatchingConfig(max_batch=4, window_s=100e-6, size_aware=True)
    result = serve(aware, rate_rps=200e3)
    sizes = result.telemetry.metrics.histogram("batch_size")
    assert sizes.sum == result.completed == 80
    assert sizes.count < sizes.sum  # some batches held > 1 member


# -- rescue under batching -----------------------------------------------------


def make_crash_serve(crashes, batching, requests=12, rate_rps=40e3, seed=0,
                     **overrides):
    from repro.resilience.recovery import RecoveryScenarioConfig, \
        run_recovery_scenario

    def factory():
        return [make_chain(i) for i in range(4)]

    config = RecoveryScenarioConfig(
        offered_rps=rate_rps,
        crashes=crashes,
        n_tenants=4,
        requests_per_tenant=requests,
        chain_factory=factory,
        batching=batching,
        slo_s=5e-3,
        seed=seed,
        **overrides,
    )
    return run_recovery_scenario(config)


def test_batch_members_rescued_exactly_once(tmp_path):
    """A coalesced batch whose domain dies mid-flight rescues *all*
    members exactly once: none lost, none double-counted, and the
    artifact's phase books reconcile (the invariant checker runs on it)."""
    from repro.faults import DomainCrash

    crashes = (DomainCrash(target="drx.s0", at_s=300e-6),)
    result = make_crash_serve(
        crashes, BatchingConfig(max_batch=4, window_s=100e-6),
        artifact_path=str(tmp_path / "batched-crash.jsonl"),
    )
    rescued = [r for r in result.records if r.rescued]
    assert rescued, "the kill must catch a batch in flight"
    # Whole batches drain and rescue together: every drained member is
    # rescued (exactly once), and completes.
    assert len(rescued) == result.domains["rescued"]
    assert result.domains["drained"] == result.domains["rescued"]
    assert all(not r.failed for r in result.records)
    assert len(result.records) == 48  # conservation: all admitted answered
    # At least one rescue covered a multi-member batch.
    sizes = result.serve.telemetry.metrics.histogram("batch_size")
    assert sizes.sum == result.serve.completed


def test_batched_rescue_replays_exactly():
    from repro.faults import DomainCrash

    crashes = (DomainCrash(target="drx.s0", at_s=300e-6),)
    batching = BatchingConfig(max_batch=4, window_s=100e-6)
    first = make_crash_serve(crashes, batching)
    second = make_crash_serve(crashes, batching)
    assert first.serve.to_dict() == second.serve.to_dict()
    assert first.domains == second.domains
