"""Determinism and shape of the seeded arrival processes."""

import random

import pytest

from repro.serve import (
    ARRIVAL_KINDS,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    arrival_times,
    make_arrivals,
)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_same_seed_identical_arrival_times(kind):
    process = make_arrivals(kind, 100.0)
    first = arrival_times(process, 7, 200)
    second = arrival_times(process, 7, 200)
    assert first == second  # exact replay, not approximate
    assert arrival_times(process, 8, 200) != first or kind == "deterministic"


def test_deterministic_gaps_are_exact():
    times = arrival_times(DeterministicArrivals(50.0), 0, 5)
    assert times == pytest.approx([0.02, 0.04, 0.06, 0.08, 0.10])


def test_poisson_mean_rate_converges():
    times = arrival_times(PoissonArrivals(200.0), 3, 4000)
    observed = len(times) / times[-1]
    assert observed == pytest.approx(200.0, rel=0.1)


def test_poisson_scaling_rescales_times():
    base = arrival_times(PoissonArrivals(100.0), 11, 100)
    doubled = arrival_times(PoissonArrivals(100.0).scaled(200.0), 11, 100)
    for slow, fast in zip(base, doubled):
        assert fast == pytest.approx(slow / 2.0)


def test_mmpp_mean_rate_property_and_scaling():
    process = MMPPArrivals(
        base_rate_rps=100.0, burst_factor=10.0,
        mean_dwell_quiet_s=0.9, mean_dwell_burst_s=0.1,
    )
    # Time-weighted: (0.9*100 + 0.1*1000) / 1.0
    assert process.mean_rate_rps == pytest.approx(190.0)
    rescaled = process.scaled(95.0)
    assert rescaled.mean_rate_rps == pytest.approx(95.0)
    assert rescaled.burst_factor == process.burst_factor


def test_mmpp_is_burstier_than_poisson():
    """Squared coefficient of variation of MMPP gaps exceeds Poisson's ~1."""
    def cv2(times):
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var / mean**2

    mmpp = make_arrivals("mmpp", 200.0, burst_factor=20.0,
                         mean_dwell_quiet_s=0.5, mean_dwell_burst_s=0.05)
    assert cv2(arrival_times(mmpp, 5, 5000)) > 1.5
    assert cv2(arrival_times(PoissonArrivals(200.0), 5, 5000)) == pytest.approx(
        1.0, rel=0.25
    )


def test_make_arrivals_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown arrival kind"):
        make_arrivals("adversarial", 10.0)


def test_invalid_rates_rejected():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        DeterministicArrivals(-1.0)
    with pytest.raises(ValueError):
        MMPPArrivals(base_rate_rps=10.0, burst_factor=0.5)


def test_arrival_times_accepts_live_rng():
    rng = random.Random(4)
    first = arrival_times(PoissonArrivals(10.0), rng, 10)
    # The same rng has advanced: a second pull continues the stream.
    second = arrival_times(PoissonArrivals(10.0), rng, 10)
    assert first != second
    assert arrival_times(PoissonArrivals(10.0), random.Random(4), 10) == first
