"""Tests for the SVM, RL policy, and Transformer NER kernels."""

import numpy as np
import pytest

from repro.accelerators import (
    LinearSVM,
    MLPPolicy,
    NERAccelerator,
    RLPolicyAccelerator,
    SVMAccelerator,
    TransformerEncoder,
    gelu,
    layer_norm,
    ppo_update,
    softmax,
)


# -- SVM -------------------------------------------------------------------


def test_svm_learns_linearly_separable_data():
    rng = np.random.default_rng(0)
    n_per_class, dim = 100, 20
    centers = np.array([[3.0] + [0.0] * (dim - 1), [-3.0] + [0.0] * (dim - 1)])
    features = np.vstack(
        [rng.normal(centers[c], 1.0, (n_per_class, dim)) for c in (0, 1)]
    ).astype(np.float32)
    labels = np.repeat([0, 1], n_per_class)
    model = LinearSVM(n_classes=2, n_features=dim).fit(features, labels, epochs=10)
    accuracy = (model.predict(features) == labels).mean()
    assert accuracy > 0.95


def test_svm_multiclass_predicts_all_classes():
    rng = np.random.default_rng(1)
    dim = 8
    features, labels = [], []
    for cls in range(3):
        center = np.zeros(dim)
        center[cls] = 5.0
        features.append(rng.normal(center, 0.5, (50, dim)))
        labels += [cls] * 50
    features = np.vstack(features).astype(np.float32)
    labels = np.asarray(labels)
    model = LinearSVM(3, dim).fit(features, labels, epochs=15)
    assert (model.predict(features) == labels).mean() > 0.9


def test_svm_validation():
    with pytest.raises(ValueError):
        LinearSVM(1, 10)
    with pytest.raises(ValueError):
        LinearSVM(2, 0)
    model = LinearSVM(2, 4)
    with pytest.raises(ValueError):
        model.decision_function(np.zeros((3, 5), dtype=np.float32))
    with pytest.raises(ValueError):
        model.fit(np.zeros((3, 4), dtype=np.float32), np.zeros(2))


def test_svm_accelerator_end_to_end():
    accel = SVMAccelerator(n_classes=5, n_features=100)
    features = np.random.default_rng(2).standard_normal((4, 100)).astype(np.float32)
    labels = accel.run(features)
    assert labels.shape == (4,)
    assert np.all((labels >= 0) & (labels < 5))
    profile = accel.work_profile(features)
    assert profile.total_ops == pytest.approx(2 * 4 * 5 * 100)


# -- RL / PPO -----------------------------------------------------------------


def test_policy_forward_shapes():
    policy = MLPPolicy(obs_dim=10, action_dim=3)
    obs = np.random.default_rng(3).standard_normal((5, 10)).astype(np.float32)
    mean, value = policy.forward(obs)
    assert mean.shape == (5, 3)
    assert value.shape == (5,)


def test_policy_deterministic_act_is_repeatable():
    policy = MLPPolicy(4, 2)
    obs = np.ones((1, 4), dtype=np.float32)
    np.testing.assert_array_equal(policy.act(obs), policy.act(obs))


def test_policy_stochastic_act_differs():
    policy = MLPPolicy(4, 2)
    obs = np.ones((1, 4), dtype=np.float32)
    rng = np.random.default_rng(4)
    a = policy.act(obs, deterministic=False, rng=rng)
    b = policy.act(obs, deterministic=False, rng=rng)
    assert not np.array_equal(a, b)


def test_policy_log_prob_peaks_at_mean():
    policy = MLPPolicy(4, 2)
    obs = np.ones((1, 4), dtype=np.float32)
    mean, _ = policy.forward(obs)
    lp_mean = policy.log_prob(obs, mean)
    lp_off = policy.log_prob(obs, mean + 1.0)
    assert lp_mean > lp_off


def test_ppo_update_improves_objective_for_positive_advantage():
    policy = MLPPolicy(6, 2, seed=11)
    rng = np.random.default_rng(5)
    obs = rng.standard_normal((64, 6)).astype(np.float32)
    actions = policy.act(obs, deterministic=False, rng=rng)
    old_lp = policy.log_prob(obs, actions)
    advantages = np.ones(64, dtype=np.float32)
    first = ppo_update(policy, obs, actions, advantages, old_lp)
    second = ppo_update(policy, obs, actions, advantages, old_lp)
    # Moving the mean toward positively-advantaged actions raises the ratio.
    assert second["ratio_mean"] >= first["ratio_mean"]


def test_ppo_update_validates_clip():
    policy = MLPPolicy(4, 2)
    with pytest.raises(ValueError):
        ppo_update(policy, np.zeros((1, 4)), np.zeros((1, 2)),
                   np.zeros(1), np.zeros(1), clip=1.5)


def test_rl_accelerator_maps_observation_to_action():
    accel = RLPolicyAccelerator(obs_dim=320, action_dim=8)
    obs = np.random.default_rng(6).standard_normal((1, 320)).astype(np.float32)
    action = accel.run(obs)
    assert action.shape == (1, 8)
    assert np.all(np.isfinite(action))


# -- Transformer NER -------------------------------------------------------------


def test_layer_norm_moments():
    x = np.random.default_rng(7).standard_normal((4, 32)) * 5 + 3
    out = layer_norm(x)
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)


def test_gelu_properties():
    assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
    assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
    assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)


def test_softmax_sums_to_one_and_stable():
    x = np.array([[1000.0, 1000.0, 999.0]])
    out = softmax(x)
    assert np.all(np.isfinite(out))
    np.testing.assert_allclose(out.sum(axis=-1), 1.0)


def test_encoder_output_shape():
    encoder = TransformerEncoder(vocab_size=100, d_model=32, n_heads=2,
                                 n_layers=1, d_ff=64, max_len=16)
    ids = np.array([[1, 5, 9, 2, 0, 0, 0, 0]], dtype=np.int32)
    logits = encoder.forward(ids)
    assert logits.shape == (1, 8, 9)


def test_encoder_padding_predicted_as_outside():
    encoder = TransformerEncoder(vocab_size=100, d_model=32, n_heads=2,
                                 n_layers=1, d_ff=64, max_len=16)
    ids = np.array([[1, 5, 2, 0, 0, 0, 0, 0]], dtype=np.int32)
    labels = encoder.predict(ids)
    assert np.all(labels[ids == 0] == 0)


def test_encoder_validation():
    with pytest.raises(ValueError):
        TransformerEncoder(d_model=30, n_heads=4)
    encoder = TransformerEncoder(max_len=8, d_model=32, n_heads=2, n_layers=1)
    with pytest.raises(ValueError):
        encoder.forward(np.zeros((1, 16), dtype=np.int32))


def test_ner_accelerator_end_to_end():
    accel = NERAccelerator(TransformerEncoder(
        vocab_size=1000, d_model=32, n_heads=2, n_layers=1, d_ff=64, max_len=32
    ))
    ids = np.random.default_rng(8).integers(1, 1000, (2, 16)).astype(np.int32)
    labels = accel.run(ids)
    assert labels.shape == (2, 16)
    profile = accel.work_profile(ids)
    assert profile.total_ops > 0
