"""Tests for the LZ77 codec and the hash-join kernel."""

import numpy as np
import pytest

from repro.accelerators import (
    CorruptStreamError,
    DecompressionAccelerator,
    HashJoinAccelerator,
    hash_join,
    lz77_compress,
    lz77_decompress,
)


# -- LZ77 -------------------------------------------------------------------


def test_roundtrip_simple():
    data = b"hello hello hello world"
    assert lz77_decompress(lz77_compress(data)) == data


def test_roundtrip_empty():
    assert lz77_decompress(lz77_compress(b"")) == b""


def test_roundtrip_incompressible_random():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, 10_000).astype(np.uint8).tobytes()
    assert lz77_decompress(lz77_compress(data)) == data


def test_roundtrip_repetitive_achieves_compression():
    data = b"abcd" * 10_000
    compressed = lz77_compress(data)
    assert lz77_decompress(compressed) == data
    assert len(compressed) < len(data) / 10


def test_roundtrip_overlapping_match_rle_style():
    data = b"a" * 1000  # forces distance-1 overlapping copies
    compressed = lz77_compress(data)
    assert lz77_decompress(compressed) == data


def test_roundtrip_table_like_data():
    rows = np.arange(50_000, dtype="<i4").tobytes()
    assert lz77_decompress(lz77_compress(rows)) == rows


def test_corrupt_tag_rejected():
    compressed = lz77_compress(b"hello world")
    corrupted = bytes([0x77]) + compressed[1:]
    with pytest.raises(CorruptStreamError):
        lz77_decompress(corrupted)


def test_truncated_stream_rejected():
    compressed = lz77_compress(b"hello hello hello")
    with pytest.raises(CorruptStreamError):
        lz77_decompress(compressed[:-2])


def test_bad_match_distance_rejected():
    # A match token referencing history that does not exist.
    import struct

    stream = struct.pack("<BHH", 0x01, 100, 4)
    with pytest.raises(CorruptStreamError):
        lz77_decompress(stream)


def test_decompression_accelerator_returns_uint8():
    data = b"table,rows,go,here\n" * 100
    out = DecompressionAccelerator().run(lz77_compress(data))
    assert out.dtype == np.uint8
    assert out.tobytes() == data


def test_decompression_work_profile_uses_output_size():
    data = b"x" * 10_000
    compressed = lz77_compress(data)
    profile = DecompressionAccelerator().work_profile(compressed)
    assert profile.bytes_in == len(compressed)
    assert profile.bytes_out == 10_000


# -- hash join ----------------------------------------------------------------


def nested_loop_join(build, probe, bk=0, pk=0):
    """Oracle: all matching (probe_row, build_row) pairs."""
    pairs = []
    for p in range(probe.shape[1]):
        for b in range(build.shape[1]):
            if probe[pk, p] == build[bk, b]:
                pairs.append((p, b))
    return pairs


def test_join_matches_nested_loop_oracle():
    rng = np.random.default_rng(1)
    build = np.stack(
        [rng.integers(0, 50, 200), rng.integers(0, 1000, 200)]
    ).astype(np.int32)
    probe = np.stack(
        [rng.integers(0, 50, 300), np.arange(300)]
    ).astype(np.int32)
    result = hash_join(build, probe)
    oracle = nested_loop_join(build, probe)
    assert result.shape[1] == len(oracle)
    got_pairs = set()
    for i in range(result.shape[1]):
        got_pairs.add((int(result[0, i]), int(result[1, i]), int(result[2, i])))
    expected_pairs = {
        (int(probe[0, p]), int(probe[1, p]), int(build[1, b]))
        for p, b in oracle
    }
    assert got_pairs == expected_pairs


def test_join_handles_duplicate_build_keys():
    build = np.array([[7, 7, 8], [100, 200, 300]], dtype=np.int32)
    probe = np.array([[7], [1]], dtype=np.int32)
    result = hash_join(build, probe)
    assert result.shape[1] == 2  # both build rows with key 7 match
    assert sorted(result[2].tolist()) == [100, 200]


def test_join_no_matches_returns_empty():
    build = np.array([[1], [10]], dtype=np.int32)
    probe = np.array([[2], [20]], dtype=np.int32)
    result = hash_join(build, probe)
    assert result.shape == (3, 0)


def test_join_validates_inputs():
    with pytest.raises(ValueError):
        hash_join(np.zeros((2, 2)), np.zeros((2, 2), dtype=np.int32))
    with pytest.raises(ValueError):
        hash_join(
            np.zeros((2, 2), dtype=np.int32),
            np.zeros((2, 2), dtype=np.int32),
            build_key=5,
        )


def test_join_with_negative_keys():
    build = np.array([[-5, 3], [1, 2]], dtype=np.int32)
    probe = np.array([[-5], [9]], dtype=np.int32)
    result = hash_join(build, probe)
    assert result.shape[1] == 1
    assert result[0, 0] == -5 and result[2, 0] == 1


def test_accelerator_runs_table_pair():
    rng = np.random.default_rng(2)
    build = np.stack([np.arange(100), rng.integers(0, 9, 100)]).astype(np.int32)
    probe = np.stack(
        [rng.integers(0, 100, 500), np.arange(500)]
    ).astype(np.int32)
    accel = HashJoinAccelerator()
    result = accel.run((build, probe))
    # Every probe key exists in build exactly once.
    assert result.shape[1] == 500
    profile = accel.work_profile((build, probe))
    assert profile.total_ops > 0
