"""Tests for the from-scratch Thompson-NFA regex engine."""

import re as stdlib_re

import numpy as np
import pytest

from repro.accelerators import PII_PATTERNS, Regex, RegexAccelerator


@pytest.mark.parametrize(
    "pattern,text,expected",
    [
        ("abc", "abc", True),
        ("abc", "abd", False),
        ("a*", "", True),
        ("a*", "aaaa", True),
        ("a+", "", False),
        ("a+", "aaa", True),
        ("a?b", "b", True),
        ("a?b", "ab", True),
        ("a?b", "aab", False),
        ("a|b", "a", True),
        ("a|b", "b", True),
        ("a|b", "c", False),
        ("(ab)+", "ababab", True),
        ("(ab)+", "aba", False),
        (".", "x", True),
        (".", "", False),
        ("[0-9]+", "12345", True),
        ("[0-9]+", "12a45", False),
        ("[^0-9]+", "abc", True),
        ("[^0-9]+", "a1c", False),
        (r"\d{3}", "123", True),
        (r"\d{3}", "12", False),
        (r"\d{2,4}", "123", True),
        (r"\d{2,4}", "12345", False),
        (r"\w+@\w+", "user@host", True),
        (r"a\.b", "a.b", True),
        (r"a\.b", "axb", False),
    ],
)
def test_fullmatch_matrix(pattern, text, expected):
    assert Regex(pattern).fullmatch(text) is expected


@pytest.mark.parametrize(
    "pattern",
    ["a{3,1}", "(ab", "ab)", "*a", "[abc", "a{,3}", "a{x}"],
)
def test_invalid_patterns_rejected(pattern):
    with pytest.raises(ValueError):
        Regex(pattern)


def test_finditer_matches_stdlib_on_pii_text():
    text = (
        "John's ssn is 123-45-6789 and his backup is 987-65-4321. "
        "Email: jdoe@example.com; phone (858) 555-1234."
    )
    ours = Regex(PII_PATTERNS["ssn"]).finditer(text)
    theirs = [m.span() for m in stdlib_re.finditer(r"\d{3}-\d{2}-\d{4}", text)]
    assert ours == theirs


def test_finditer_is_leftmost_longest():
    spans = Regex("a+").finditer("baaab")
    assert spans == [(1, 4)]


def test_finditer_non_overlapping():
    spans = Regex(r"\d\d").finditer("123456")
    assert spans == [(0, 2), (2, 4), (4, 6)]


def test_pii_patterns_all_compile_and_match_samples():
    samples = {
        "ssn": "123-45-6789",
        "email": "alice.smith@corp.example.org",
        "phone": "(619) 555-0000",
        "credit_card": "4111 1111 1111 1111",
    }
    for name, sample in samples.items():
        assert Regex(PII_PATTERNS[name]).fullmatch(sample), name


def test_accelerator_redacts_all_pii_kinds():
    text = (
        b"ssn 123-45-6789 email a@b.co card 4111 1111 1111 1111 "
        b"phone 619-555-0000 end"
    )
    records = np.frombuffer(text.ljust(128, b" "), dtype=np.uint8).reshape(1, -1)
    out = RegexAccelerator().run(records.copy())
    redacted = out.tobytes().decode()
    assert "123-45-6789" not in redacted
    assert "a@b.co" not in redacted
    assert "4111 1111 1111 1111" not in redacted
    assert "619-555-0000" not in redacted
    assert "end" in redacted  # non-PII text survives


def test_accelerator_counts_matches():
    accel = RegexAccelerator()
    text = b"123-45-6789 and 987-65-4321"
    records = np.frombuffer(text.ljust(32, b" "), dtype=np.uint8).reshape(1, -1)
    accel.run(records.copy())
    assert accel.matches_found == 2


def test_accelerator_validates_input():
    with pytest.raises(ValueError):
        RegexAccelerator().run(np.zeros(10, dtype=np.uint8))


def test_accelerator_preserves_shape_and_dtype():
    records = np.full((4, 64), ord("x"), dtype=np.uint8)
    out = RegexAccelerator().run(records)
    assert out.shape == records.shape
    assert out.dtype == np.uint8
    np.testing.assert_array_equal(out, records)  # nothing to redact
