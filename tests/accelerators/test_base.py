"""Tests for accelerator base classes and device occupancy."""

import pytest

from repro.accelerators import AcceleratorDevice, AcceleratorSpec
from repro.sim import Simulator


def make_spec(**overrides):
    base = dict(name="test", domain="d", speedup_vs_cpu=5.0)
    base.update(overrides)
    return AcceleratorSpec(**base)


def test_spec_defaults_match_paper_clocks():
    spec = make_spec()
    assert spec.fpga_clock_hz == pytest.approx(250e6)
    assert spec.asic_clock_hz == pytest.approx(1e9)
    assert spec.asic_scaling == pytest.approx(4.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        make_spec(speedup_vs_cpu=0)
    with pytest.raises(ValueError):
        make_spec(implementation="asic")
    with pytest.raises(ValueError):
        make_spec(power_w=-1)
    with pytest.raises(ValueError):
        make_spec(fpga_clock_hz=0)


def test_device_serializes_kernel_invocations():
    sim = Simulator()
    device = AcceleratorDevice(sim, make_spec(), kernel_time_s=1e-3)
    ends = []

    def invoke(sim):
        yield from device.execute()
        ends.append(sim.now)

    for _ in range(3):
        sim.spawn(invoke(sim))
    sim.run()
    assert ends == pytest.approx([1e-3, 2e-3, 3e-3])
    assert device.invocations == 3
    assert device.busy_seconds == pytest.approx(3e-3)


def test_device_utilization():
    sim = Simulator()
    device = AcceleratorDevice(sim, make_spec(), kernel_time_s=1.0)

    def invoke(sim):
        yield from device.execute()
        yield sim.timeout(1.0)

    sim.spawn(invoke(sim))
    sim.run()
    assert device.utilization() == pytest.approx(0.5)


def test_device_rejects_negative_kernel_time():
    sim = Simulator()
    with pytest.raises(ValueError):
        AcceleratorDevice(sim, make_spec(), kernel_time_s=-1.0)
