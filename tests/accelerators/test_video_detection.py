"""Tests for the video codec and the CNN detector."""

import numpy as np
import pytest

from repro.accelerators import (
    BitstreamError,
    ObjectDetectionAccelerator,
    VideoDecodeAccelerator,
    conv2d,
    decode_frame,
    encode_frame,
    max_pool2d,
    relu,
)


def make_nv12(h, w, seed=0):
    rng = np.random.default_rng(seed)
    # Smooth content compresses like real video: low-frequency blobs.
    yy, xx = np.mgrid[0 : 3 * h // 2, 0:w]
    base = 128 + 60 * np.sin(yy / 17.0) * np.cos(xx / 23.0)
    noise = rng.normal(0, 4, (3 * h // 2, w))
    return np.clip(base + noise, 0, 255).astype(np.uint8)


# -- codec ------------------------------------------------------------------


def test_roundtrip_is_close_lossy():
    frame = make_nv12(64, 64)
    decoded = decode_frame(encode_frame(frame, 64, 64))
    assert decoded.shape == frame.shape
    assert decoded.dtype == np.uint8
    # Lossy, but close: quantization error is bounded.
    error = np.abs(decoded.astype(int) - frame.astype(int))
    assert error.mean() < 10
    assert error.max() < 80


def test_flat_frame_roundtrips_nearly_exactly():
    frame = np.full((96, 64), 120, dtype=np.uint8)
    decoded = decode_frame(encode_frame(frame, 64, 64))
    assert np.abs(decoded.astype(int) - 120).max() <= 2


def test_smooth_content_compresses():
    frame = make_nv12(128, 128)
    bitstream = encode_frame(frame, 128, 128)
    assert len(bitstream) < frame.nbytes


def test_decode_rejects_bad_magic():
    with pytest.raises(BitstreamError):
        decode_frame(b"XXXX" + bytes(100))


def test_decode_rejects_truncated_stream():
    frame = make_nv12(32, 32)
    bitstream = encode_frame(frame, 32, 32)
    with pytest.raises(BitstreamError):
        decode_frame(bitstream[: len(bitstream) // 2])


def test_encode_validates_shape():
    with pytest.raises(ValueError):
        encode_frame(np.zeros((10, 10), dtype=np.uint8), 32, 32)


def test_accelerator_decodes_to_nv12():
    frame = make_nv12(64, 128)
    accel = VideoDecodeAccelerator()
    out = accel.run(encode_frame(frame, 64, 128))
    assert out.shape == (96, 128)
    profile = accel.work_profile(encode_frame(frame, 64, 128))
    assert profile.elements == out.size


def test_video_has_lowest_speedup_in_suite():
    """The paper: Video Surveillance's accelerator gains least."""
    from repro.accelerators import (
        AesGcmAccelerator,
        DecompressionAccelerator,
        FFTAccelerator,
        HashJoinAccelerator,
        SVMAccelerator,
    )

    video = VideoDecodeAccelerator().spec.speedup_vs_cpu
    others = [
        FFTAccelerator().spec.speedup_vs_cpu,
        SVMAccelerator().spec.speedup_vs_cpu,
        AesGcmAccelerator().spec.speedup_vs_cpu,
        DecompressionAccelerator().spec.speedup_vs_cpu,
        HashJoinAccelerator().spec.speedup_vs_cpu,
    ]
    assert video < min(others)


# -- CNN primitives ------------------------------------------------------------


def test_conv2d_identity_kernel():
    x = np.random.default_rng(0).standard_normal((1, 5, 5)).astype(np.float32)
    w = np.zeros((1, 1, 3, 3), dtype=np.float32)
    w[0, 0, 1, 1] = 1.0  # identity tap
    out = conv2d(x, w, np.zeros(1, dtype=np.float32))
    np.testing.assert_allclose(out, x, atol=1e-6)


def test_conv2d_matches_manual_computation():
    x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
    w = np.ones((1, 1, 3, 3), dtype=np.float32)
    out = conv2d(x, w, np.zeros(1, dtype=np.float32), padding=0)
    # Center 2x2: each is the sum of its 3x3 neighbourhood.
    assert out.shape == (1, 2, 2)
    assert out[0, 0, 0] == pytest.approx(x[0, :3, :3].sum())


def test_conv2d_shape_validation():
    with pytest.raises(ValueError):
        conv2d(
            np.zeros((3, 8, 8), dtype=np.float32),
            np.zeros((4, 2, 3, 3), dtype=np.float32),
            np.zeros(4, dtype=np.float32),
        )


def test_relu_clamps_negatives():
    np.testing.assert_array_equal(
        relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
    )


def test_max_pool_takes_block_maxima():
    x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
    out = max_pool2d(x)
    np.testing.assert_array_equal(out[0], [[5, 7], [13, 15]])
    with pytest.raises(ValueError):
        max_pool2d(np.zeros((1, 5, 5)))


# -- detector -----------------------------------------------------------------


@pytest.fixture(scope="module")
def detector():
    return ObjectDetectionAccelerator(input_size=64)


def test_detector_head_shape(detector):
    tensor = np.zeros((3, 64, 64), dtype=np.float32)
    head = detector.forward(tensor)
    assert head.shape == (5, 8, 8)


def test_detector_is_deterministic(detector):
    rng = np.random.default_rng(1)
    tensor = rng.standard_normal((3, 64, 64)).astype(np.float32)
    a = detector.forward(tensor)
    b = detector.forward(tensor)
    np.testing.assert_array_equal(a, b)


def test_detector_boxes_are_normalized(detector):
    rng = np.random.default_rng(2)
    low_threshold = ObjectDetectionAccelerator(input_size=64, threshold=0.05)
    tensor = rng.standard_normal((3, 64, 64)).astype(np.float32)
    detections = low_threshold.run(tensor)
    assert detections, "low threshold should yield detections"
    for det in detections:
        assert 0.0 <= det.x <= 1.0
        assert 0.0 <= det.y <= 1.0
        assert det.confidence >= 0.05


def test_detector_input_validation(detector):
    with pytest.raises(ValueError):
        detector.run(np.zeros((3, 32, 32), dtype=np.float32))
    with pytest.raises(ValueError):
        ObjectDetectionAccelerator(input_size=30)


def test_detector_work_profile_counts_convolution_macs(detector):
    tensor = np.zeros((3, 64, 64), dtype=np.float32)
    profile = detector.work_profile(tensor)
    # First layer alone: 64*64*16*3*9 MACs; total must exceed 2x that.
    assert profile.total_ops > 2 * 2 * 64 * 64 * 16 * 3 * 9
