"""Tests for the from-scratch FFT and the FFT accelerator."""

import numpy as np
import pytest

from repro.accelerators import (
    FFTAccelerator,
    fft_radix2,
    frame_signal,
    hann_window,
    rfft_frames,
)


def test_fft_matches_numpy_on_random_input():
    rng = np.random.default_rng(0)
    x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    np.testing.assert_allclose(fft_radix2(x), np.fft.fft(x), atol=1e-9)


def test_fft_matches_numpy_batched():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((5, 128))
    np.testing.assert_allclose(
        fft_radix2(x.astype(np.complex128)), np.fft.fft(x, axis=-1), atol=1e-9
    )


def test_fft_impulse_gives_flat_spectrum():
    x = np.zeros(64, dtype=np.complex128)
    x[0] = 1.0
    np.testing.assert_allclose(fft_radix2(x), np.ones(64), atol=1e-12)


def test_fft_pure_tone_peaks_at_bin():
    n = 128
    tone = np.exp(2j * np.pi * 5 * np.arange(n) / n)
    spectrum = np.abs(fft_radix2(tone))
    assert spectrum.argmax() == 5


def test_fft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        fft_radix2(np.zeros(100))


def test_fft_linearity():
    rng = np.random.default_rng(2)
    a = rng.standard_normal(64).astype(np.complex128)
    b = rng.standard_normal(64).astype(np.complex128)
    np.testing.assert_allclose(
        fft_radix2(2 * a + 3 * b),
        2 * fft_radix2(a) + 3 * fft_radix2(b),
        atol=1e-9,
    )


def test_hann_window_properties():
    w = hann_window(512)
    assert w[0] == pytest.approx(0.0)
    assert w.max() == pytest.approx(1.0, abs=1e-4)
    assert len(w) == 512
    with pytest.raises(ValueError):
        hann_window(0)


def test_frame_signal_shapes_and_content():
    signal = np.arange(100.0)
    frames = frame_signal(signal, frame_len=32, hop=16)
    assert frames.shape == (5, 32)
    np.testing.assert_array_equal(frames[1], np.arange(16.0, 48.0))


def test_frame_signal_validation():
    with pytest.raises(ValueError):
        frame_signal(np.arange(10.0), 32, 16)
    with pytest.raises(ValueError):
        frame_signal(np.ones((2, 10)), 4, 2)


def test_rfft_frames_one_sided_length():
    frames = np.random.default_rng(3).standard_normal((4, 256))
    spectra = rfft_frames(frames)
    assert spectra.shape == (4, 129)
    assert spectra.dtype == np.complex64
    np.testing.assert_allclose(
        spectra, np.fft.rfft(frames, axis=-1).astype(np.complex64),
        atol=1e-3,
    )


def test_accelerator_runs_audio_snippet():
    accel = FFTAccelerator(frame_len=512, hop=256)
    rng = np.random.default_rng(4)
    audio = rng.standard_normal(44_100)
    out = accel.run(audio)
    assert out.ndim == 2
    assert out.shape[1] == 257


def test_accelerator_runs_multichannel_em_signal():
    accel = FFTAccelerator()
    signals = np.random.default_rng(5).standard_normal((8, 4096))
    out = accel.run(signals)
    assert out.shape == (8, 2049)


def test_accelerator_work_profile_positive():
    accel = FFTAccelerator(frame_len=512, hop=256)
    audio = np.random.default_rng(6).standard_normal(22_050)
    profile = accel.work_profile(audio)
    assert profile.total_ops > 0
    assert profile.bytes_in == audio.nbytes


def test_accelerator_rejects_3d_input():
    with pytest.raises(ValueError):
        FFTAccelerator().run(np.zeros((2, 2, 2)))
