"""Tests for the from-scratch AES-128-GCM implementation."""

import numpy as np
import pytest

from repro.accelerators import (
    AES128,
    AesGcmAccelerator,
    AuthenticationError,
    aes_gcm_decrypt,
    aes_gcm_encrypt,
)
from repro.accelerators.crypto import SBOX


def test_sbox_known_values():
    # Canonical AES S-box entries.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_sbox_is_a_permutation():
    assert sorted(SBOX.tolist()) == list(range(256))


def test_aes128_fips197_vector():
    """FIPS-197 Appendix C.1 known-answer test."""
    key = bytes(range(16))
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    blocks = np.frombuffer(plaintext, dtype=np.uint8).reshape(1, 16)
    ciphertext = AES128(key).encrypt_blocks(blocks).tobytes()
    assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_aes128_batch_encryption_consistent():
    key = b"0123456789abcdef"
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 256, (10, 16)).astype(np.uint8)
    batch = AES128(key).encrypt_blocks(blocks)
    singles = np.vstack(
        [AES128(key).encrypt_blocks(blocks[i : i + 1]) for i in range(10)]
    )
    np.testing.assert_array_equal(batch, singles)


def test_aes128_key_length_validation():
    with pytest.raises(ValueError):
        AES128(b"short")


def test_gcm_nist_empty_vector():
    """NIST GCM test: zero key, zero IV, empty plaintext."""
    ciphertext, tag = aes_gcm_encrypt(bytes(16), bytes(12), b"")
    assert ciphertext == b""
    assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_gcm_nist_single_block_vector():
    """NIST GCM test case 2: zero key/IV, 16 zero bytes of plaintext."""
    ciphertext, tag = aes_gcm_encrypt(bytes(16), bytes(12), bytes(16))
    assert ciphertext.hex() == "0388dace60b6a392f328c2b971b2fe78"
    assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"


def test_gcm_roundtrip_with_aad():
    key, iv = b"k" * 16, b"n" * 12
    plaintext = b"the quick brown fox jumps over the lazy dog" * 10
    ciphertext, tag = aes_gcm_encrypt(key, iv, plaintext, aad=b"header")
    assert aes_gcm_decrypt(key, iv, ciphertext, tag, aad=b"header") == plaintext


def test_gcm_detects_tampered_ciphertext():
    key, iv = b"k" * 16, b"n" * 12
    ciphertext, tag = aes_gcm_encrypt(key, iv, b"attack at dawn")
    tampered = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
    with pytest.raises(AuthenticationError):
        aes_gcm_decrypt(key, iv, tampered, tag)


def test_gcm_detects_wrong_aad():
    key, iv = b"k" * 16, b"n" * 12
    ciphertext, tag = aes_gcm_encrypt(key, iv, b"secret", aad=b"good")
    with pytest.raises(AuthenticationError):
        aes_gcm_decrypt(key, iv, ciphertext, tag, aad=b"evil")


def test_gcm_iv_validation():
    with pytest.raises(ValueError):
        aes_gcm_encrypt(bytes(16), bytes(11), b"x")


def test_gcm_ciphertext_differs_from_plaintext():
    ciphertext, _tag = aes_gcm_encrypt(b"k" * 16, b"n" * 12, b"hello world!!")
    assert ciphertext != b"hello world!!"


def test_accelerator_decrypts_payload():
    accel = AesGcmAccelerator()
    plaintext = b"ssn 123-45-6789 lives here"
    ciphertext, tag = aes_gcm_encrypt(accel.key, b"iv-12-bytes!", plaintext)
    out = accel.run({"ciphertext": ciphertext, "iv": b"iv-12-bytes!", "tag": tag})
    assert out.tobytes() == plaintext


def test_accelerator_work_profile_scales_with_size():
    accel = AesGcmAccelerator()
    small, tag_s = aes_gcm_encrypt(accel.key, b"iv-12-bytes!", b"x" * 100)
    large, tag_l = aes_gcm_encrypt(accel.key, b"iv-12-bytes!", b"x" * 10_000)
    p_small = accel.work_profile({"ciphertext": small, "iv": b"", "tag": tag_s})
    p_large = accel.work_profile({"ciphertext": large, "iv": b"", "tag": tag_l})
    assert p_large.total_ops == pytest.approx(100 * p_small.total_ops)
