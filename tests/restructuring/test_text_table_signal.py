"""Tests for text, table, and signal restructuring ops."""

import numpy as np
import pytest

from repro.restructuring import (
    BandPower,
    BytesToRecords,
    DictionaryEncode,
    HashPartition,
    ObservationAssembly,
    RecordsToBytes,
    RowsToColumnar,
    TokenizeForNER,
    ZScoreNormalize,
    fnv1a32,
)


def to_bytes(text):
    return np.frombuffer(text.encode(), dtype=np.uint8).copy()


# -- text -----------------------------------------------------------------


def test_bytes_to_records_splits_lines():
    data = to_bytes("alpha\nbeta\n")
    records = BytesToRecords(8).apply(data)
    assert records.shape == (2, 8)
    assert records[0].tobytes().rstrip(b"\x00") == b"alpha"
    assert records[1].tobytes().rstrip(b"\x00") == b"beta"


def test_bytes_to_records_wraps_long_lines():
    data = to_bytes("abcdefghij\n")
    records = BytesToRecords(4).apply(data)
    assert records.shape == (3, 4)
    assert records[0].tobytes() == b"abcd"
    assert records[2].tobytes().rstrip(b"\x00") == b"ij"


def test_records_roundtrip():
    text = "ssn 123-45-6789\nemail a@b.com\nplain line"
    data = to_bytes(text)
    records = BytesToRecords(32).apply(data)
    back = RecordsToBytes().apply(records)
    assert back.tobytes().decode() == text


def test_bytes_to_records_validates_input():
    with pytest.raises(ValueError):
        BytesToRecords(8).apply(np.zeros((2, 2), dtype=np.uint8))
    with pytest.raises(ValueError):
        BytesToRecords(0)


def test_tokenize_for_ner_structure():
    op = TokenizeForNER(seq_len=8)
    ids = op.apply(to_bytes("alice works at acme corp in berlin"))
    assert ids.dtype == np.int32
    assert ids.shape[1] == 8
    assert ids[0, 0] == op.CLS_ID
    assert op.SEP_ID in ids[0]


def test_tokenize_is_deterministic():
    op = TokenizeForNER(seq_len=16)
    a = op.apply(to_bytes("hello world"))
    b = op.apply(to_bytes("hello world"))
    np.testing.assert_array_equal(a, b)
    assert op.token_id(b"hello") == op.token_id(b"hello")
    assert op.token_id(b"hello") != op.token_id(b"world")


def test_tokenize_splits_long_text_into_sequences():
    words = " ".join(f"w{i}" for i in range(100))
    ids = TokenizeForNER(seq_len=16).apply(to_bytes(words))
    assert ids.shape[0] == np.ceil(100 / 14)


# -- table ----------------------------------------------------------------


def make_rows(values):
    """Build a (n_rows, n_cols*4) uint8 row image from an int32 2D array."""
    arr = np.asarray(values, dtype="<i4")
    return arr.view(np.uint8).reshape(arr.shape[0], arr.shape[1] * 4)


def test_rows_to_columnar_pivots():
    rows = make_rows([[1, 10], [2, 20], [3, 30]])
    cols = RowsToColumnar(2).apply(rows)
    np.testing.assert_array_equal(cols, [[1, 2, 3], [10, 20, 30]])


def test_rows_to_columnar_validates_width():
    with pytest.raises(ValueError):
        RowsToColumnar(3).apply(make_rows([[1, 2]]))


def test_dictionary_encode_codes_against_sorted_uniques():
    cols = np.array([[5, 7, 5, 9], [1, 2, 3, 4]], dtype=np.int32)
    op = DictionaryEncode(column=0)
    out = op.apply(cols)
    np.testing.assert_array_equal(op.dictionary, [5, 7, 9])
    np.testing.assert_array_equal(out[0], [0, 1, 0, 2])
    np.testing.assert_array_equal(out[1], cols[1])  # other columns intact


def test_hash_partition_groups_rows_by_partition():
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 1000, 256).astype(np.int32)
    payload = np.arange(256, dtype=np.int32)
    block = np.stack([keys, payload])
    op = HashPartition(key_column=0, n_partitions=4)
    out = op.apply(block)
    parts = fnv1a32(out[0]) % np.uint32(4)
    assert np.all(np.diff(parts) >= 0)  # grouped, ascending partition ids
    # Boundaries cover all rows.
    assert op.boundaries[0] == 0 and op.boundaries[-1] == 256
    # No row lost: payload is a permutation.
    assert sorted(out[1].tolist()) == list(range(256))


def test_hash_partition_preserves_key_payload_pairs():
    keys = np.array([3, 1, 4, 1, 5], dtype=np.int32)
    payload = np.array([30, 10, 40, 11, 50], dtype=np.int32)
    out = HashPartition(0, 2).apply(np.stack([keys, payload]))
    pairs = set(zip(out[0].tolist(), out[1].tolist()))
    assert pairs == {(3, 30), (1, 10), (4, 40), (1, 11), (5, 50)}


def test_fnv1a32_deterministic_and_spread():
    values = np.arange(10_000, dtype=np.int32)
    h1, h2 = fnv1a32(values), fnv1a32(values)
    np.testing.assert_array_equal(h1, h2)
    # Reasonable spread across 16 buckets.
    counts = np.bincount(h1 % np.uint32(16), minlength=16)
    assert counts.min() > 10_000 / 16 * 0.7


# -- signal ---------------------------------------------------------------


def test_band_power_shape_and_band_separation():
    sample_rate = 256.0
    n = 512
    t = np.arange(n) / sample_rate
    # Channel 0: 10 Hz (alpha); channel 1: 20 Hz (beta).
    signals = np.stack([np.sin(2 * np.pi * 10 * t), np.sin(2 * np.pi * 20 * t)])
    spectra = np.fft.rfft(signals, axis=1)
    out = BandPower(sample_rate).apply(spectra)
    assert out.shape == (2, 5)
    assert out[0].argmax() == 2  # alpha band
    assert out[1].argmax() == 3  # beta band


def test_band_power_validates_input():
    with pytest.raises(ValueError):
        BandPower(256.0).apply(np.ones((2, 10)))
    with pytest.raises(ValueError):
        BandPower(-1.0)


def test_zscore_normalize_moments():
    rng = np.random.default_rng(5)
    data = rng.normal(10.0, 3.0, (4, 1000))
    out = ZScoreNormalize().apply(data)
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)


def test_zscore_handles_constant_rows():
    out = ZScoreNormalize().apply(np.full((2, 8), 5.0))
    assert np.all(np.isfinite(out))


def test_observation_assembly_flattens():
    out = ObservationAssembly().apply(np.ones((64, 5), dtype=np.float64))
    assert out.shape == (1, 320)
    assert out.dtype == np.float32
