"""Tests for audio restructuring: spectrogram + mel-scale transformation."""

import numpy as np
import pytest

from repro.restructuring import (
    FeatureFlatten,
    LogCompress,
    MelScale,
    PowerSpectrum,
    RestructuringPipeline,
    SpectrogramAssembly,
    hz_to_mel,
    mel_filterbank,
    mel_to_hz,
)


def test_mel_scale_roundtrip():
    hz = np.array([100.0, 440.0, 4000.0])
    np.testing.assert_allclose(mel_to_hz(hz_to_mel(hz)), hz, rtol=1e-9)


def test_mel_scale_is_monotonic():
    hz = np.linspace(0, 8000, 100)
    mel = hz_to_mel(hz)
    assert np.all(np.diff(mel) > 0)


def test_mel_filterbank_shape_and_nonnegative():
    bank = mel_filterbank(40, 513, 16000.0)
    assert bank.shape == (40, 513)
    assert np.all(bank >= 0)


def test_mel_filterbank_filters_are_triangular_with_single_peak():
    bank = mel_filterbank(10, 257, 16000.0)
    for row in bank:
        peak = row.argmax()
        assert row[peak] > 0
        # Nondecreasing up to the peak, nonincreasing after.
        assert np.all(np.diff(row[: peak + 1]) >= -1e-6)
        assert np.all(np.diff(row[peak:]) <= 1e-6)


def test_mel_filterbank_covers_spectrum():
    bank = mel_filterbank(64, 513, 16000.0)
    coverage = bank.sum(axis=0)
    # Interior bins are covered by at least one filter.
    assert np.all(coverage[5:-5] > 0)


def test_mel_filterbank_validation():
    with pytest.raises(ValueError):
        mel_filterbank(0, 513, 16000.0)
    with pytest.raises(ValueError):
        mel_filterbank(10, 513, 16000.0, fmin=9000.0, fmax=8000.0)


def test_power_spectrum_is_squared_magnitude():
    spectrum = np.array([[3 + 4j, 1 + 0j]], dtype=np.complex64)
    out = PowerSpectrum().apply(spectrum)
    np.testing.assert_allclose(out, [[25.0, 1.0]])
    assert out.dtype == np.float32


def test_power_spectrum_rejects_real_input():
    with pytest.raises(ValueError):
        PowerSpectrum().apply(np.ones((2, 2)))


def test_spectrogram_assembly_transposes_to_bins_major():
    frames = np.arange(6, dtype=np.float32).reshape(2, 3)  # (frames, bins)
    out = SpectrogramAssembly().apply(frames)
    assert out.shape == (3, 2)
    np.testing.assert_array_equal(out, frames.T)


def test_mel_scale_op_projects_to_n_mels():
    rng = np.random.default_rng(1)
    spectrogram = rng.random((513, 20)).astype(np.float32)  # (bins, frames)
    op = MelScale(n_mels=64, sample_rate=16000.0)
    out = op.apply(spectrogram)
    assert out.shape == (64, 20)
    # Energy conservation-ish: outputs are nonnegative combinations.
    assert np.all(out >= 0)


def test_mel_scale_ops_per_element_tracks_filter_support():
    # Sparse filterbank evaluation: cost per mel output scales with the
    # average triangular-filter support (~2 x bins / n_mels).
    op = MelScale(n_mels=64, sample_rate=16000.0)
    op.apply(np.ones((257, 4), dtype=np.float32))
    assert op.ops_per_element == pytest.approx(4.0 * 257 / 64)


def test_log_compress_monotonic_and_validated():
    data = np.array([0.0, 1.0, 10.0], dtype=np.float32)
    out = LogCompress().apply(data)
    assert np.all(np.diff(out) > 0)
    with pytest.raises(ValueError):
        LogCompress().apply(np.array([-1.0]))


def test_full_sound_detection_restructuring_pipeline():
    """FFT frames -> SVM features, the Fig. 2 data-motion step end to end."""
    rng = np.random.default_rng(7)
    n_frames, n_bins = 62, 513
    fft_out = (rng.standard_normal((n_frames, n_bins))
               + 1j * rng.standard_normal((n_frames, n_bins))).astype(np.complex64)
    pipe = RestructuringPipeline(
        "sound-detection-motion",
        [
            PowerSpectrum(),
            SpectrogramAssembly(),
            MelScale(n_mels=128, sample_rate=22050.0),
            LogCompress(),
            FeatureFlatten(),
        ],
    )
    features, profiles = pipe.run(fft_out)
    assert features.shape == (1, 128 * n_frames)
    assert features.dtype == np.float32
    assert len(profiles) == 5
    # The mel projection dominates the arithmetic.
    mel_profile = profiles[2]
    assert mel_profile.total_ops == max(p.total_ops for p in profiles)
