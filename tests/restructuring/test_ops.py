"""Tests for generic restructuring ops and the pipeline container."""

import numpy as np
import pytest

from repro.restructuring import (
    Crop,
    Dequantize,
    InterleaveToPlanar,
    Normalize,
    Pad,
    PlanarToInterleave,
    Quantize,
    Reshape,
    RestructuringPipeline,
    TransposeOp,
    Typecast,
)


def test_typecast_converts_dtype():
    out = Typecast(np.float32).apply(np.arange(10, dtype=np.int32))
    assert out.dtype == np.float32
    np.testing.assert_array_equal(out, np.arange(10, dtype=np.float32))


def test_typecast_profile_reflects_sizes():
    data = np.zeros(1000, dtype=np.int8)
    op = Typecast(np.float32)
    out, profile = op.run(data)
    assert profile.bytes_in == 1000
    assert profile.bytes_out == 4000
    assert profile.elements == 1000
    assert profile.element_size == 4


def test_reshape_produces_contiguous_copy():
    data = np.arange(12)
    out = Reshape((3, 4)).apply(data)
    assert out.shape == (3, 4)
    assert out.flags["C_CONTIGUOUS"]
    out[0, 0] = 99
    assert data[0] == 0  # input untouched


def test_transpose_matches_numpy():
    data = np.arange(24).reshape(2, 3, 4)
    out = TransposeOp((2, 0, 1)).apply(data)
    np.testing.assert_array_equal(out, np.transpose(data, (2, 0, 1)))
    assert out.flags["C_CONTIGUOUS"]


def test_transpose_is_gather_heavy():
    assert TransposeOp().gather_fraction > 0.5


def test_normalize_applies_affine():
    data = np.array([10.0, 20.0], dtype=np.float64)
    out = Normalize(offset=10.0, scale=5.0).apply(data)
    np.testing.assert_allclose(out, [0.0, 2.0])
    assert out.dtype == np.float32


def test_normalize_rejects_zero_scale():
    with pytest.raises(ValueError):
        Normalize(0.0, 0.0)


def test_quantize_dequantize_roundtrip():
    data = np.linspace(-1.0, 1.0, 64, dtype=np.float32)
    q = Quantize(scale=1 / 127)
    d = Dequantize(scale=1 / 127)
    restored = d.apply(q.apply(data))
    np.testing.assert_allclose(restored, data, atol=1 / 127)


def test_quantize_clips_to_int8_range():
    out = Quantize(scale=0.001).apply(np.array([10.0, -10.0]))
    assert out.dtype == np.int8
    assert out[0] == 127 and out[1] == -128


def test_pad_to_multiple():
    out = Pad(8).apply(np.ones((2, 5)))
    assert out.shape == (2, 8)
    assert np.all(out[:, 5:] == 0)


def test_pad_noop_when_aligned():
    data = np.ones((2, 8))
    out = Pad(8).apply(data)
    np.testing.assert_array_equal(out, data)
    assert out is not data  # still a copy


def test_crop_takes_prefix():
    out = Crop(3).apply(np.arange(10))
    np.testing.assert_array_equal(out, [0, 1, 2])


def test_crop_rejects_short_axis():
    with pytest.raises(ValueError):
        Crop(20).apply(np.arange(10))


def test_interleave_planar_roundtrip():
    hwc = np.random.default_rng(0).integers(0, 255, (4, 6, 3)).astype(np.uint8)
    chw = InterleaveToPlanar().apply(hwc)
    assert chw.shape == (3, 4, 6)
    back = PlanarToInterleave().apply(chw)
    np.testing.assert_array_equal(back, hwc)


def test_interleave_requires_3d():
    with pytest.raises(ValueError):
        InterleaveToPlanar().apply(np.ones((4, 4)))


def test_pipeline_chains_ops_in_order():
    pipe = RestructuringPipeline(
        "demo", [Normalize(0.0, 2.0), Typecast(np.float16)]
    )
    out = pipe.apply(np.full(4, 8.0))
    assert out.dtype == np.float16
    np.testing.assert_allclose(out, np.full(4, 4.0))


def test_pipeline_run_returns_per_op_profiles():
    pipe = RestructuringPipeline(
        "demo", [Normalize(0.0, 2.0), Typecast(np.float16)]
    )
    out, profiles = pipe.run(np.full(1024, 8.0, dtype=np.float32))
    assert len(profiles) == 2
    assert profiles[0].name == "normalize"
    assert profiles[1].bytes_out == out.nbytes


def test_pipeline_rejects_empty():
    with pytest.raises(ValueError):
        RestructuringPipeline("empty", [])


def test_ops_do_not_mutate_input():
    data = np.arange(16, dtype=np.float32)
    snapshot = data.copy()
    for op in (Normalize(1.0, 2.0), Typecast(np.int32), Reshape((4, 4)),
               Pad(5), Quantize(0.1)):
        op.apply(data)
        np.testing.assert_array_equal(data, snapshot)
