"""Tests for image restructuring: NV12 conversion, resize, tensorization."""

import numpy as np
import pytest

from repro.restructuring import ImageToTensor, Nv12ToRgb, ResizeBilinear


def make_nv12(h, w, y_val=128, u_val=128, v_val=128):
    frame = np.zeros((3 * h // 2, w), dtype=np.uint8)
    frame[:h] = y_val
    uv = frame[h:].reshape(h // 2, w // 2, 2)
    uv[..., 0] = u_val
    uv[..., 1] = v_val
    return frame


def test_nv12_grey_maps_to_grey_rgb():
    out = Nv12ToRgb(8, 8).apply(make_nv12(8, 8, y_val=100))
    assert out.shape == (8, 8, 3)
    # Neutral chroma (128) leaves R=G=B=Y.
    assert np.all(out == 100)


def test_nv12_red_chroma_raises_red_channel():
    out = Nv12ToRgb(8, 8).apply(make_nv12(8, 8, y_val=100, v_val=200))
    r, g, b = out[0, 0]
    assert r > 100
    assert g < 100
    assert b == 100


def test_nv12_rejects_odd_dims_and_bad_shape():
    with pytest.raises(ValueError):
        Nv12ToRgb(7, 8)
    with pytest.raises(ValueError):
        Nv12ToRgb(8, 8).apply(np.zeros((8, 8), dtype=np.uint8))
    with pytest.raises(ValueError):
        Nv12ToRgb(8, 8).apply(np.zeros((12, 8), dtype=np.float32))


def test_resize_identity_when_sizes_match():
    rng = np.random.default_rng(3)
    img = rng.integers(0, 255, (16, 16, 3)).astype(np.uint8)
    out = ResizeBilinear(16, 16).apply(img)
    np.testing.assert_array_equal(out, img)


def test_resize_constant_image_stays_constant():
    img = np.full((32, 48, 3), 77, dtype=np.uint8)
    out = ResizeBilinear(16, 20).apply(img)
    assert out.shape == (16, 20, 3)
    assert np.all(out == 77)


def test_resize_preserves_smooth_gradient():
    ramp = np.tile(np.linspace(0, 255, 64, dtype=np.float32)[None, :, None],
                   (8, 1, 1))
    out = ResizeBilinear(8, 32).apply(ramp)
    # Downsampled ramp should still be monotonically increasing.
    row = out[0, :, 0]
    assert np.all(np.diff(row) > 0)


def test_resize_validation():
    with pytest.raises(ValueError):
        ResizeBilinear(0, 10)
    with pytest.raises(ValueError):
        ResizeBilinear(4, 4).apply(np.ones((8, 8)))


def test_image_to_tensor_layout_and_normalization():
    img = np.full((4, 6, 3), 255, dtype=np.uint8)
    out = ImageToTensor(mean=127.5, scale=127.5).apply(img)
    assert out.shape == (3, 4, 6)
    assert out.dtype == np.float32
    np.testing.assert_allclose(out, 1.0)


def test_image_to_tensor_zero_maps_to_minus_one():
    img = np.zeros((2, 2, 3), dtype=np.uint8)
    out = ImageToTensor().apply(img)
    np.testing.assert_allclose(out, -1.0)


def test_video_surveillance_motion_pipeline_shapes():
    """NV12 1080p frame -> 416x416 planar fp32 detector tensor."""
    from repro.restructuring import RestructuringPipeline

    h, w = 1080, 1920
    frame = make_nv12(h, w, y_val=90)
    pipe = RestructuringPipeline(
        "video-surveillance-motion",
        [Nv12ToRgb(h, w), ResizeBilinear(416, 416), ImageToTensor()],
    )
    tensor, profiles = pipe.run(frame)
    assert tensor.shape == (3, 416, 416)
    assert tensor.dtype == np.float32
    assert profiles[0].bytes_in == frame.nbytes
