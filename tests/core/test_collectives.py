"""Tests for one-to-many / many-to-one data movement (Fig. 17 substrate)."""

import pytest

from repro.core import (
    CollectiveSystem,
    Mode,
    SystemConfig,
    collective_profile,
    reduction_profile,
)

MB = 1024 * 1024


def run(operation, mode, n, nbytes=4 * MB):
    system = CollectiveSystem(n, SystemConfig(mode=mode))
    return system.run(operation, nbytes)


def test_collective_profile_volume():
    p = collective_profile(8 * MB)
    assert p.bytes_in == 8 * MB and p.bytes_out == 8 * MB
    assert p.total_ops > 0


def test_reduction_profile_scales_with_sources():
    p4 = reduction_profile(MB, 4)
    p8 = reduction_profile(MB, 8)
    assert p8.bytes_in == 2 * p4.bytes_in
    assert p8.total_ops == pytest.approx(2 * p4.total_ops)


def test_system_validation():
    with pytest.raises(ValueError):
        CollectiveSystem(1, SystemConfig(mode=Mode.MULTI_AXL))
    with pytest.raises(ValueError):
        CollectiveSystem(4, SystemConfig(mode=Mode.INTEGRATED))
    system = CollectiveSystem(4, SystemConfig(mode=Mode.MULTI_AXL))
    with pytest.raises(ValueError):
        system.run("gather", MB)


def test_groups_follow_switch_fanout():
    system = CollectiveSystem(
        20, SystemConfig(mode=Mode.BUMP_IN_WIRE, accelerators_per_switch=8)
    )
    assert [len(g) for g in system.groups] == [8, 8, 4]


@pytest.mark.parametrize("operation", ["broadcast", "allreduce"])
def test_dmx_beats_baseline(operation):
    base = run(operation, Mode.MULTI_AXL, 8)
    dmx = run(operation, Mode.BUMP_IN_WIRE, 8)
    assert base.latency_s > dmx.latency_s


@pytest.mark.parametrize("operation", ["broadcast", "allreduce"])
def test_speedup_grows_with_fanout(operation):
    def speedup(n):
        base = run(operation, Mode.MULTI_AXL, n)
        dmx = run(operation, Mode.BUMP_IN_WIRE, n)
        return base.latency_s / dmx.latency_s

    assert speedup(32) > speedup(4)


def test_allreduce_gains_more_than_broadcast():
    """Paper: all-reduce involves more DMA + restructuring, so DMX helps
    it more."""
    def speedup(operation, n):
        base = run(operation, Mode.MULTI_AXL, n)
        dmx = run(operation, Mode.BUMP_IN_WIRE, n)
        return base.latency_s / dmx.latency_s

    for n in (8, 16, 32):
        assert speedup("allreduce", n) > speedup("broadcast", n)


def test_latency_scales_with_payload():
    small = run("broadcast", Mode.BUMP_IN_WIRE, 8, nbytes=MB)
    large = run("broadcast", Mode.BUMP_IN_WIRE, 8, nbytes=8 * MB)
    assert large.latency_s > small.latency_s


def test_result_metadata():
    result = run("allreduce", Mode.MULTI_AXL, 4)
    assert result.operation == "allreduce"
    assert result.mode == Mode.MULTI_AXL
    assert result.n_accelerators == 4
