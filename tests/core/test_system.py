"""Tests for the DMX system model (topology, modes, runs)."""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.profiles import WorkProfile

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def make_chain(i=0, in_mb=12, out_mb=6):
    profile = WorkProfile(
        name="motion", bytes_in=2 * in_mb * MB, bytes_out=out_mb * MB,
        elements=in_mb * MB // 4, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=5e-3, accel_time_s=1e-3,
                        output_bytes=in_mb * MB),
            MotionStage("m", profile, input_bytes=in_mb * MB,
                        output_bytes=out_mb * MB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=4e-3, accel_time_s=8e-4,
                        output_bytes=MB),
        ],
    )


def build(mode, n_apps=1, **config_kwargs):
    return DMXSystem(
        [make_chain(i) for i in range(n_apps)],
        SystemConfig(mode=mode, **config_kwargs),
    )


def test_system_requires_chains_and_unique_names():
    with pytest.raises(ValueError):
        DMXSystem([], SystemConfig())
    chain = make_chain(0)
    with pytest.raises(ValueError, match="unique"):
        DMXSystem([chain, make_chain(0)], SystemConfig())


def test_topology_accelerator_count():
    system = build(Mode.MULTI_AXL, n_apps=3)
    assert len(system.accel_devices) == 6  # two kernels per app
    assert not system.drx_devices


def test_topology_switch_fanout():
    system = build(Mode.MULTI_AXL, n_apps=5, accelerators_per_switch=4)
    # 10 accelerators over switches of 4 -> 3 switches.
    assert system.n_switches == 3


def test_bitw_creates_one_drx_per_accelerator():
    system = build(Mode.BUMP_IN_WIRE, n_apps=2)
    assert len(system.drx_devices) == 4
    assert "a0k0.drx" in system.drx_devices
    # The inline DRX reaches its accelerator over a private mux.
    links, hops = system.fabric.path("a0k0", "a0k0.drx")
    assert hops == 0 and len(links) == 1


def test_standalone_creates_one_card_per_app_pair():
    system = build(Mode.STANDALONE, n_apps=3)
    assert len(system.drx_devices) == 2  # large cards, 2 apps each
    system = build(Mode.STANDALONE, n_apps=8)
    assert len(system.drx_devices) == 4


def test_integrated_creates_single_shared_drx():
    system = build(Mode.INTEGRATED, n_apps=4)
    assert list(system.drx_devices) == ["drx.root"]


def test_pcie_integrated_creates_one_drx_per_switch():
    system = build(Mode.PCIE_INTEGRATED, n_apps=5, accelerators_per_switch=4)
    assert len(system.drx_devices) == system.n_switches


def test_latency_run_produces_all_records():
    system = build(Mode.MULTI_AXL, n_apps=2)
    result = system.run_latency(requests_per_app=3)
    assert len(result.records) == 6
    assert result.mean_latency() > 0
    assert set(result.apps()) == {"app0", "app1"}


def test_phase_fractions_sum_to_one():
    system = build(Mode.MULTI_AXL)
    result = system.run_latency(2)
    assert sum(result.phase_fractions().values()) == pytest.approx(1.0)


def test_multi_axl_restructuring_dominates():
    result = build(Mode.MULTI_AXL).run_latency(2)
    fractions = result.phase_fractions()
    assert fractions["restructuring"] > 0.5


def test_dmx_shrinks_restructuring_fraction():
    base = build(Mode.MULTI_AXL).run_latency(2)
    dmx = build(Mode.BUMP_IN_WIRE).run_latency(2)
    assert (
        dmx.phase_fractions()["restructuring"]
        < base.phase_fractions()["restructuring"]
    )
    assert dmx.mean_latency() < base.mean_latency()


def test_speedup_grows_with_concurrency():
    def speedup(n):
        base = build(Mode.MULTI_AXL, n_apps=n).run_latency(2)
        dmx = build(Mode.BUMP_IN_WIRE, n_apps=n).run_latency(2)
        return base.mean_latency() / dmx.mean_latency()

    assert speedup(8) > speedup(1)


def test_placement_ordering_at_load():
    """Paper: Integrated <= Standalone <= BITW <= PCIe-Integrated."""
    latencies = {}
    for mode in (Mode.INTEGRATED, Mode.STANDALONE, Mode.BUMP_IN_WIRE,
                 Mode.PCIE_INTEGRATED):
        latencies[mode] = build(mode, n_apps=8).run_latency(2).mean_latency()
    assert latencies[Mode.INTEGRATED] >= latencies[Mode.STANDALONE] * 0.98
    assert latencies[Mode.STANDALONE] >= latencies[Mode.BUMP_IN_WIRE] * 0.98
    # PCIe-Integrated saves only a round-trip over BITW (Sec. VII-B): the
    # two are nearly equal, with the exact winner profile-dependent.
    assert latencies[Mode.BUMP_IN_WIRE] >= latencies[Mode.PCIE_INTEGRATED] * 0.85


def test_all_cpu_moves_no_fabric_bytes():
    system = build(Mode.ALL_CPU)
    system.run_latency(2)
    assert system.bytes_moved() == 0


def test_baseline_moves_data_through_root():
    system = build(Mode.MULTI_AXL)
    system.run_latency(1)
    # Every request crosses accel.up + sw.up twice (in and out legs).
    assert system.bytes_moved() > 0
    upstream = system.fabric.nodes["sw0"].uplink
    assert upstream.bytes_moved > 0


def test_bitw_keeps_inbound_off_the_switch():
    system = build(Mode.BUMP_IN_WIRE)
    system.run_latency(1)
    upstream = system.fabric.nodes["sw0"].uplink
    # Only control never touches upstream for a same-switch chain; the
    # inbound leg uses the mux. Upstream carries nothing here.
    assert upstream.bytes_moved == 0


def test_throughput_run_overlaps_requests():
    lat = build(Mode.BUMP_IN_WIRE).run_latency(4)
    thr = build(Mode.BUMP_IN_WIRE).run_throughput(4)
    # Pipelined requests complete faster than end-to-end latency x count.
    assert thr.elapsed < lat.elapsed * 0.9
    assert thr.throughput() > 1.0 / lat.mean_latency()


def test_run_validates_request_count():
    with pytest.raises(ValueError):
        build(Mode.MULTI_AXL).run_latency(0)
    with pytest.raises(ValueError):
        build(Mode.MULTI_AXL).run_throughput(-1)


def test_energy_accounting_inputs_available():
    system = build(Mode.BUMP_IN_WIRE)
    system.run_latency(2)
    assert system.accelerator_busy_seconds() > 0
    assert system.drx_busy_seconds() > 0
    assert system.cpu.busy_seconds >= 0


# -- submit(): the external per-request entry point ---------------------------


def test_submit_returns_request_record():
    system = build(Mode.BUMP_IN_WIRE, n_apps=2)
    collected = []

    def client(app_index):
        record = yield from system.submit(app_index)
        collected.append(record)

    system.sim.spawn(client(0))
    system.sim.spawn(client(1))
    system.sim.run()
    assert len(collected) == 2
    assert {r.app for r in collected} == {"app0", "app1"}
    assert all(r.latency > 0 and not r.failed for r in collected)


def test_submit_matches_run_latency_timing():
    reference = build(Mode.BUMP_IN_WIRE).run_latency(1)

    system = build(Mode.BUMP_IN_WIRE)
    records = []

    def client():
        records.append((yield from system.submit(0)))

    system.sim.spawn(client())
    system.sim.run()
    assert records[0].latency == pytest.approx(reference.records[0].latency)
    assert records[0].phases == reference.records[0].phases


def test_submit_validates_app_index():
    system = build(Mode.MULTI_AXL)
    with pytest.raises(IndexError):
        system.sim.spawn(system.submit(5))
        system.sim.run()


def test_app_index_lookup():
    system = build(Mode.MULTI_AXL, n_apps=3)
    assert system.app_index("app2") == 2
    with pytest.raises(KeyError):
        system.app_index("nope")


# -- RunResult goodput accounting --------------------------------------------


def test_result_metrics_exclude_failed_requests_by_default():
    from repro.core.system import RequestRecord, RunResult

    ok = RequestRecord(app="a", start=0.0, end=1.0, phases={})
    bad = RequestRecord(app="a", start=0.0, end=9.0, phases={}, failed=True)
    result = RunResult(mode=Mode.MULTI_AXL, records=[ok, bad], elapsed=2.0,
                       requests_per_app=1)
    assert result.latencies() == [1.0]
    assert result.mean_latency() == pytest.approx(1.0)
    assert result.throughput() == pytest.approx(0.5)
    # Raw completion rate remains available.
    assert result.latencies(include_failed=True) == [1.0, 9.0]
    assert result.mean_latency(include_failed=True) == pytest.approx(5.0)
    assert result.throughput(include_failed=True) == pytest.approx(1.0)
    assert result.failure_count() == 1
