"""Tests for application chains and profile merging."""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import AppChain, KernelStage, MotionStage, merge_profiles
from repro.profiles import WorkProfile

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=5.0)


def kernel(name="k", cpu=1e-3, accel=2e-4, out=MB):
    return KernelStage(name, SPEC, cpu_time_s=cpu, accel_time_s=accel,
                       output_bytes=out)


def motion(name="m", in_bytes=MB, out_bytes=MB):
    profile = WorkProfile(name=name, bytes_in=in_bytes, bytes_out=out_bytes,
                          elements=in_bytes // 4, ops_per_element=4.0)
    return MotionStage(name, profile, input_bytes=in_bytes,
                       output_bytes=out_bytes)


def test_kernel_stage_validation():
    with pytest.raises(ValueError):
        kernel(cpu=-1.0)
    with pytest.raises(ValueError):
        kernel(out=0)
    with pytest.raises(ValueError, match="slower than CPU"):
        KernelStage("bad", SPEC, cpu_time_s=1e-4, accel_time_s=1e-3,
                    output_bytes=MB)


def test_kernel_serial_time_defaults_to_three_x():
    stage = kernel(cpu=3e-3)
    assert stage.cpu_serial_time_s == pytest.approx(9e-3)


def test_kernel_serial_time_must_exceed_parallel():
    with pytest.raises(ValueError, match="serial"):
        KernelStage("bad", SPEC, cpu_time_s=1e-3, accel_time_s=1e-4,
                    output_bytes=MB, cpu_serial_time_s=5e-4)


def test_kernel_cpu_latency_scales_down_with_threads():
    stage = kernel(cpu=1e-3)
    assert stage.cpu_latency(1) == pytest.approx(stage.cpu_serial_time_s)
    assert stage.cpu_latency(8) < stage.cpu_latency(2)
    # Sub-linear: 8 threads is not 8x faster.
    assert stage.cpu_latency(1) / stage.cpu_latency(8) < 8


def test_chain_validation_accepts_alternating():
    chain = AppChain("app", [kernel("k1"), motion(), kernel("k2")])
    chain.validate()
    assert chain.n_accelerators == 2
    assert len(chain.motion_stages) == 1


def test_chain_rejects_bad_shapes():
    with pytest.raises(ValueError):
        AppChain("short", [kernel()]).validate()
    with pytest.raises(ValueError):
        AppChain("two-kernels", [kernel(), kernel(), kernel()]).validate()
    with pytest.raises(ValueError):
        AppChain("ends-motion",
                 [kernel(), motion(), kernel(), motion()]).validate()


def test_three_kernel_chain_is_valid():
    chain = AppChain(
        "ner",
        [kernel("k1"), motion("m1"), kernel("k2"), motion("m2"),
         kernel("k3")],
    )
    chain.validate()
    assert chain.n_accelerators == 3


def test_scale_batches_scales_everything():
    chain = AppChain("app", [kernel(), motion(), kernel()])
    scaled = chain.scale_batches(2.0)
    k = scaled.kernel_stages[0]
    m = scaled.motion_stages[0]
    assert k.accel_time_s == pytest.approx(2 * 2e-4)
    assert k.cpu_serial_time_s == pytest.approx(2 * 3e-3)
    assert m.input_bytes == 2 * MB
    assert m.profile.bytes_in == 2 * MB
    with pytest.raises(ValueError):
        chain.scale_batches(0)


def test_merge_profiles_sums_volume():
    p1 = WorkProfile("a", bytes_in=MB, bytes_out=MB, elements=1000,
                     ops_per_element=2.0)
    p2 = WorkProfile("b", bytes_in=MB, bytes_out=2 * MB, elements=500,
                     ops_per_element=8.0)
    merged = merge_profiles([p1, p2], "merged")
    assert merged.bytes_in == 2 * MB
    assert merged.bytes_out == 3 * MB
    assert merged.elements == 1500
    assert merged.total_ops == pytest.approx(p1.total_ops + p2.total_ops)


def test_merge_profiles_weights_character_by_ops():
    light = WorkProfile("light", bytes_in=MB, bytes_out=MB, elements=100,
                        ops_per_element=1.0, gather_fraction=0.0)
    heavy = WorkProfile("heavy", bytes_in=MB, bytes_out=MB, elements=100,
                        ops_per_element=99.0, gather_fraction=1.0)
    merged = merge_profiles([light, heavy], "merged")
    assert merged.gather_fraction == pytest.approx(0.99)


def test_merge_profiles_rejects_empty():
    with pytest.raises(ValueError):
        merge_profiles([], "none")
