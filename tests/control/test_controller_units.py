"""Unit tests for the controller's parts: tier pricing, placement
packing, the live-migration surface, config validation, and the ramp
arrival process the SLO benchmarks drive load with."""

import random

import pytest

from repro.control import ControllerConfig, TierBid, TierCostModel, plan_placement
from repro.core import DMXSystem, Mode, SystemConfig
from repro.resilience import ResilienceConfig
from repro.resilience.brownout import BrownoutConfig, BrownoutTier
from repro.serve import (
    FrontendConfig,
    PoissonArrivals,
    RampArrivals,
    ServingFrontend,
    TenantSpec,
)
from repro.serve.arrivals import arrival_times
from repro.workloads import build_benchmark_chains

SLO = 20e-3
TARGET = 0.85  # headroom target: needed = tail - 17ms


def standalone_system(resilience=None):
    return DMXSystem(
        build_benchmark_chains("sound-detection", 4),
        SystemConfig(mode=Mode.STANDALONE),
        resilience=resilience,
    )


def spread_system():
    """A topology where crossings are real: two accelerators per switch
    puts each app on its own switch, so a card (homed on its group's
    first switch) is remote to the odd apps' accelerators."""
    return DMXSystem(
        build_benchmark_chains("sound-detection", 4),
        SystemConfig(mode=Mode.STANDALONE, accelerators_per_switch=2),
    )


# -- tier cost model ----------------------------------------------------------


class _FixedBidModel(TierCostModel):
    """A model with hand-authored bids, for exercising choose() alone."""

    def __init__(self, fixed):
        self._fixed = list(fixed)

    def bids(self, slo_s, shed_fraction):
        return list(self._fixed)


def _bid(tier, relief_ms, paid_ms):
    return TierBid(tier=tier, relief_s=relief_ms * 1e-3, paid_s=paid_ms * 1e-3)


LADDER = [
    _bid(BrownoutTier.SHED_LOW, relief_ms=5.0, paid_ms=10.0),
    _bid(BrownoutTier.COALESCE, relief_ms=3.0, paid_ms=1.0),
    _bid(BrownoutTier.FORCE_CPU, relief_ms=8.0, paid_ms=4.0),
]


def test_inside_headroom_target_picks_normal():
    model = _FixedBidModel(LADDER)
    tier, _ = model.choose(16e-3, SLO, TARGET, shed_fraction=0.5)
    assert tier is BrownoutTier.NORMAL


def test_cheapest_sufficient_tier_wins_not_the_lowest_rung():
    # needed = 2.5ms: every tier's relief suffices; COALESCE is cheapest.
    model = _FixedBidModel(LADDER)
    tier, _ = model.choose(19.5e-3, SLO, TARGET, shed_fraction=0.5)
    assert tier is BrownoutTier.COALESCE


def test_insufficient_cheap_tiers_are_skipped():
    # needed = 6ms: only FORCE_CPU's 8ms relief covers it, despite
    # COALESCE being 4x cheaper.
    model = _FixedBidModel(LADDER)
    tier, _ = model.choose(23e-3, SLO, TARGET, shed_fraction=0.5)
    assert tier is BrownoutTier.FORCE_CPU


def test_nothing_sufficient_degrades_to_biggest_relief():
    model = _FixedBidModel(LADDER)
    tier, _ = model.choose(60e-3, SLO, TARGET, shed_fraction=0.5)
    assert tier is BrownoutTier.FORCE_CPU


def test_equal_price_tie_breaks_to_the_lower_tier():
    model = _FixedBidModel(
        [
            _bid(BrownoutTier.SHED_LOW, relief_ms=5.0, paid_ms=4.0),
            _bid(BrownoutTier.FORCE_CPU, relief_ms=8.0, paid_ms=4.0),
        ]
    )
    tier, _ = model.choose(19e-3, SLO, TARGET, shed_fraction=0.5)
    assert tier is BrownoutTier.SHED_LOW


def real_model(system, max_tier=BrownoutTier.FORCE_CPU):
    return TierCostModel(
        system,
        shed_cost_weight=2.0,
        coalesce_relief_fraction=0.35,
        coalesce_cost_s=1e-3,
        energy_cost_s_per_j=0.0,
        max_tier=max_tier,
    )


def test_live_bids_are_pure_and_in_tier_order():
    system = standalone_system()
    model = real_model(system)
    before = system.sim.now
    first = model.bids(SLO, shed_fraction=0.5)
    second = model.bids(SLO, shed_fraction=0.5)
    # Pricing advances no clock and is replayable.
    assert system.sim.now == before
    assert first == second
    assert [b.tier for b in first] == [
        BrownoutTier.SHED_LOW,
        BrownoutTier.COALESCE,
        BrownoutTier.FORCE_CPU,
    ]
    for bid in first:
        assert bid.paid_s >= 0.0
    # Shedding and coalescing shave queueing, never add it.
    assert first[0].relief_s >= 0.0
    assert first[1].relief_s >= 0.0
    # FORCE_CPU's relief is *signed*: on an unloaded system there is no
    # queue to dodge and the host path is slower than DRX service, so
    # forcing it must price as net harm — an unsigned gap here once
    # pinned the controller onto the slow host path.
    assert first[2].relief_s < 0.0


def test_max_tier_caps_the_bid_ladder():
    model = real_model(standalone_system(), max_tier=BrownoutTier.COALESCE)
    tiers = [b.tier for b in model.bids(SLO, shed_fraction=0.5)]
    assert BrownoutTier.FORCE_CPU not in tiers
    assert tiers == [BrownoutTier.SHED_LOW, BrownoutTier.COALESCE]


def test_zero_shed_fraction_prices_shedding_as_free_and_useless():
    model = real_model(standalone_system())
    shed = model.bids(SLO, shed_fraction=0.0)[0]
    assert shed.relief_s == 0.0
    assert shed.paid_s == 0.0


# -- placement packing and live migration -------------------------------------


def test_home_placement_is_a_fixed_point():
    system = spread_system()
    cards = system.standalone_cards()
    assert cards == ["drx.s0", "drx.s1"]
    # Even apps sit on their card's switch; their group-mates pay the
    # root-complex crossing either way.
    assert system.upstream_crossings(0, "drx.s0") == 0
    assert system.upstream_crossings(0, "drx.s1") > 0
    assert system.upstream_crossings(2, "drx.s1") == 0
    assert system.upstream_crossings(2, "drx.s0") > 0
    # A healthy placement re-plans to itself: zero churn migrations.
    plan = plan_placement(system, {}, cards)
    assert plan.migrations == []
    assert plan.assignment == {a: cards[a // 2] for a in range(4)}


def test_flat_topology_home_placement_is_also_stable():
    # The default one-switch topology prices every card equally; the
    # stay-home tie-break must still yield zero migrations.
    system = standalone_system()
    cards = system.standalone_cards()
    assert all(
        system.upstream_crossings(a, c) == 0 for a in range(4) for c in cards
    )
    assert plan_placement(system, {}, cards).migrations == []


def test_dead_card_repack_stretches_capacity():
    system = spread_system()
    plan = plan_placement(system, {}, ["drx.s0"])
    # ceil(4 apps / 1 card): nobody strands.
    assert plan.assignment == {a: "drx.s0" for a in range(4)}
    assert sorted(m[0] for m in plan.migrations) == [2, 3]
    assert all(m[1] == "drx.s1" and m[2] == "drx.s0" for m in plan.migrations)


def test_hot_apps_pack_first():
    system = spread_system()
    plan = plan_placement(system, {3: 9.0}, ["drx.s0"])
    assert plan.migrations[0][0] == 3


def test_migrate_app_swaps_the_live_home_card():
    system = spread_system()
    assert system.migrate_app(2, "drx.s0") == "drx.s1"
    assert system.card_of_app(2) == "drx.s0"
    assert system.upstream_crossings(2, system.card_of_app(2)) > 0
    # And back.
    assert system.migrate_app(2, "drx.s1") == "drx.s0"
    assert system.card_of_app(2) == "drx.s1"


def test_migrate_app_rejects_bad_inputs():
    system = standalone_system()
    with pytest.raises(KeyError):
        system.migrate_app(0, "drx.s9")
    with pytest.raises(IndexError):
        system.migrate_app(99, "drx.s0")
    integrated = DMXSystem(
        build_benchmark_chains("sound-detection", 2),
        SystemConfig(mode=Mode.INTEGRATED),
    )
    assert integrated.standalone_cards() == []
    with pytest.raises(ValueError):
        integrated.migrate_app(0, "drx.s0")


def test_plan_placement_needs_a_live_card():
    with pytest.raises(ValueError):
        plan_placement(standalone_system(), {}, [])


# -- configuration validation --------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"update_period_s": 0.0},
        {"window": 0},
        {"min_samples": 0},
        {"min_samples": 9, "window": 8},
        {"quantile": 1.0},
        {"target_fraction": 0.0},
        {"min_weight": 0},
        {"min_weight": 5, "max_weight": 4},
        {"standby_cards": -1},
        {"scale_up_at": 0.3, "scale_down_at": 0.4},
        {"max_migrations_per_update": -1},
        {"weight_dwell_s": -1.0},
    ],
)
def test_controller_config_rejects(kwargs):
    with pytest.raises(ValueError):
        ControllerConfig(**kwargs)


def _tenants(chains):
    return [
        TenantSpec(name=c.name, arrivals=PoissonArrivals(100.0), n_requests=2)
        for c in chains
    ]


def test_arming_requires_an_slo():
    with pytest.raises(ValueError, match="slo_s"):
        FrontendConfig(controller=ControllerConfig())


def test_drive_tiers_requires_the_brownout_ladder():
    with pytest.raises(ValueError, match="brownout"):
        FrontendConfig(slo_s=SLO, controller=ControllerConfig())
    # drive_tiers=False arms fine without a ladder.
    FrontendConfig(
        slo_s=SLO, controller=ControllerConfig(drive_tiers=False)
    )


def test_standby_pool_requires_the_control_plane_and_spare_cards():
    chains = build_benchmark_chains("sound-detection", 4)
    config = FrontendConfig(
        slo_s=SLO,
        brownout=BrownoutConfig(),
        controller=ControllerConfig(standby_cards=1),
    )
    no_resilience = DMXSystem(chains, SystemConfig(mode=Mode.STANDALONE))
    with pytest.raises(ValueError, match="control plane"):
        ServingFrontend(no_resilience, _tenants(chains), config, seed=1)
    armed = standalone_system(resilience=ResilienceConfig(seed=7))
    too_many = FrontendConfig(
        slo_s=SLO,
        brownout=BrownoutConfig(),
        controller=ControllerConfig(standby_cards=2),
    )
    with pytest.raises(ValueError, match="no card in service"):
        ServingFrontend(armed, _tenants(chains), too_many, seed=1)


# -- ramp arrivals -------------------------------------------------------------


def test_ramp_validates_segments():
    with pytest.raises(ValueError):
        RampArrivals(segments=())
    with pytest.raises(ValueError):
        RampArrivals(segments=((0.0, 100.0),))
    with pytest.raises(ValueError):
        RampArrivals(segments=((1.0, -5.0),))


def test_ramp_mean_rate_is_time_weighted():
    ramp = RampArrivals(segments=((1.0, 100.0), (3.0, 300.0)))
    assert ramp.mean_rate_rps == pytest.approx(250.0)
    assert ramp.scaled(500.0).mean_rate_rps == pytest.approx(500.0)


def test_ramp_is_replayable():
    ramp = RampArrivals(segments=((0.5, 50.0), (0.5, 800.0)))
    assert arrival_times(ramp, 5, 100) == arrival_times(ramp, 5, 100)
    assert arrival_times(ramp, 5, 100) != arrival_times(ramp, 6, 100)


def test_ramp_realizes_the_rate_change():
    ramp = RampArrivals(segments=((0.5, 20.0), (0.5, 2000.0)))
    times = arrival_times(ramp, random.Random(11), 600)
    early = sum(1 for t in times if t < 0.5)
    late = sum(1 for t in times if 0.5 <= t < 1.0)
    # ~10 expected in the quiet leg, ~1000/s afterwards.
    assert early < 40
    assert late > 200


def test_ramp_final_rate_holds_forever():
    ramp = RampArrivals(segments=((0.01, 100.0),))
    times = arrival_times(ramp, random.Random(3), 50)
    assert times[-1] > 0.01  # well past the declared ramp span
    assert len(times) == 50
