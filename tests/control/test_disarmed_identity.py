"""Controller-disarmed runs are byte-identical to pre-controller builds.

The two scenario functions below were run on the tree *before*
:mod:`repro.control` existed and the SHA-256 of their canonical-JSON
output pinned here. A frontend with ``controller=None`` (the default)
must reproduce those hashes byte for byte: arming support — the live
weight table, per-tenant in-flight counts, the controller hook points —
may not perturb a single event, float, or dict ordering in a disarmed
run. If a refactor legitimately changes serving output, recapture both
hashes on a controller-free build and update them together.
"""

import hashlib
import json

from repro.core import DMXSystem, Mode, SystemConfig
from repro.resilience import ResilienceConfig
from repro.resilience.brownout import BrownoutConfig
from repro.serve import (
    Discipline,
    FrontendConfig,
    PoissonArrivals,
    ServingFrontend,
    SweepConfig,
    TenantSpec,
    run_sweep,
)
from repro.workloads import build_benchmark_chains

SERVE_GOLDEN_SHA256 = (
    "cc96f296ea250629912fe0fb8d6d04a8d2e3b015e83679d80028307cfb9246ef"
)
SWEEP_GOLDEN_SHA256 = (
    "a773bdaae375465defdb9fd7052cb5b2edbad5bfa9f5a1773b462c8e21e0dc2c"
)


def golden_serve_dict():
    """A serving run exercising WRR + brownout + resilience, no controller."""
    chains = build_benchmark_chains("sound-detection", 4)
    system = DMXSystem(
        chains,
        SystemConfig(mode=Mode.STANDALONE),
        resilience=ResilienceConfig(seed=7),
    )
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=PoissonArrivals(450.0),
            n_requests=24,
            weight=1 + (i % 2),
            priority=i % 2,
        )
        for i, chain in enumerate(chains)
    ]
    result = ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=6,
            discipline=Discipline.WRR,
            slo_s=40e-3,
            brownout=BrownoutConfig(min_dwell_s=5e-3),
        ),
        seed=3,
    ).run()
    return result.to_dict()


def golden_sweep_json():
    config = SweepConfig(
        offered_loads_rps=(300.0, 600.0),
        benchmark="sound-detection",
        n_tenants=4,
        requests_per_tenant=12,
        modes=(Mode.STANDALONE,),
        seed=1,
    )
    return run_sweep(config).to_json()


def _sha(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_disarmed_serve_run_matches_pre_controller_golden():
    serve = json.dumps(
        golden_serve_dict(), sort_keys=True, separators=(",", ":")
    )
    assert _sha(serve) == SERVE_GOLDEN_SHA256


def test_disarmed_sweep_matches_pre_controller_golden():
    assert _sha(golden_sweep_json()) == SWEEP_GOLDEN_SHA256
