"""Tests for :mod:`repro.control` — the unified closed-loop controller."""
