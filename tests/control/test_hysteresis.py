"""Closed-loop properties of an armed run: every actuator honors its
dwell-time hysteresis, all four actuators actually fire under pressure,
and the whole armed loop is seed-replayable.

One overloaded STANDALONE scenario (4 tenants at a rate well past the
two-card knee, one card parked in the standby pool) drives the
controller through its full repertoire; the properties below are
asserted over the recorded ``(time, kind, detail)`` action log rather
than any particular trajectory, so they hold under retuning.
"""

import json

import pytest

from repro.control import ControllerConfig
from repro.core import DMXSystem, Mode, SystemConfig
from repro.resilience import ResilienceConfig
from repro.resilience.brownout import BrownoutConfig
from repro.serve import (
    Discipline,
    FrontendConfig,
    PoissonArrivals,
    ServingFrontend,
    TenantSpec,
)
from repro.workloads import build_benchmark_chains

BROWNOUT_DWELL_S = 4e-3
CONTROLLER = ControllerConfig(standby_cards=1)
#: Dwell gates are asserted up to float slop on the sim clock.
SLOP = 1e-12


def armed_run(seed=3):
    chains = build_benchmark_chains("sound-detection", 4)
    system = DMXSystem(
        chains,
        SystemConfig(mode=Mode.STANDALONE),
        resilience=ResilienceConfig(seed=7),
    )
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=PoissonArrivals(700.0),
            n_requests=40,
            priority=i % 2,
        )
        for i, chain in enumerate(chains)
    ]
    frontend = ServingFrontend(
        system,
        tenants,
        FrontendConfig(
            max_inflight=6,
            discipline=Discipline.WRR,
            slo_s=20e-3,
            brownout=BrownoutConfig(min_dwell_s=BROWNOUT_DWELL_S),
            controller=CONTROLLER,
        ),
        seed=seed,
    )
    result = frontend.run()
    return frontend, result


@pytest.fixture(scope="module")
def armed():
    frontend, result = armed_run()
    return frontend, result, frontend._controller.actions


def _times(actions, *kinds, skip_arm_time=False):
    return [
        t
        for t, kind, _ in actions
        if kind in kinds and not (skip_arm_time and t == 0.0)
    ]


def _assert_spaced(times, dwell):
    for earlier, later in zip(times, times[1:]):
        assert later - earlier >= dwell - SLOP, (
            f"actions {earlier} and {later} violate dwell {dwell}"
        )


def test_the_scenario_exercises_every_actuator(armed):
    _, _, actions = armed
    kinds = {kind for _, kind, _ in actions}
    assert {"weight", "tier", "scale_up", "scale_down", "migration"} <= kinds


def test_weight_changes_honor_the_per_tenant_dwell(armed):
    _, _, actions = armed
    by_tenant = {}
    for t, kind, detail in actions:
        if kind != "weight":
            continue
        by_tenant.setdefault(detail.split(":", 1)[0], []).append(t)
    assert by_tenant, "no weight actions recorded"
    for times in by_tenant.values():
        _assert_spaced(times, CONTROLLER.weight_dwell_s)


def test_tier_changes_never_flap_faster_than_the_ladder_dwell(armed):
    _, _, actions = armed
    times = _times(actions, "tier")
    assert times, "no tier actions recorded"
    _assert_spaced(times, BROWNOUT_DWELL_S)


def test_scaling_honors_its_dwell(armed):
    _, _, actions = armed
    # Parking the standby pool at arm time is configuration, not a
    # scaling decision; the dwell gates in-run decisions.
    times = _times(actions, "scale_up", "scale_down", skip_arm_time=True)
    assert times, "no in-run scaling actions recorded"
    _assert_spaced(times, CONTROLLER.scale_dwell_s)


def test_placement_updates_honor_their_dwell(armed):
    _, _, actions = armed
    times = _times(actions, "migration", skip_arm_time=True)
    assert times, "no in-run migrations recorded"
    # One update may move several apps at the same instant (urgent
    # evacuations bypass the budget); the dwell gates distinct updates.
    _assert_spaced(sorted(set(times)), CONTROLLER.placement_dwell_s)


def test_armed_runs_are_seed_replayable():
    frontend_a, result_a = armed_run()
    frontend_b, result_b = armed_run()
    assert frontend_a._controller.actions == frontend_b._controller.actions
    canonical = lambda r: json.dumps(
        r.to_dict(), sort_keys=True, separators=(",", ":")
    )
    assert canonical(result_a) == canonical(result_b)


def test_decisions_land_in_telemetry(armed):
    frontend, _, actions = armed
    by_kind = {}
    for counter in frontend.telemetry.metrics.counters():
        if counter.name == "controller_actions":
            by_kind[dict(counter.labels)["kind"]] = counter.value
    # Every recorded action incremented its per-kind counter, and every
    # kind surfaced at least one instant in the controller category.
    assert sum(by_kind.values()) == len(actions)
    for _, kind, _ in actions:
        assert by_kind[kind] >= 1
    categories = {i.category for i in frontend.telemetry.instants}
    assert "controller" in categories
