"""Interrupt/cancel semantics: the engine paths fault recovery leans on.

Covers the bugs the fault-injection layer exposed: releasing a request
the process never held, Store getters leaking across timeout races,
cancel() accounting, and shared exception instances mutating across
waiters.
"""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    Resource,
    Server,
    SimulationError,
    Simulator,
    Store,
    WaitTimeout,
)


# -- Resource.use / Server.transfer under interruption -----------------------


def test_interrupting_queued_user_withdraws_instead_of_crashing():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    done = []

    def holder(sim):
        yield from res.use(10.0)
        done.append(("holder", sim.now))

    def queued(sim):
        try:
            yield from res.use(1.0)
        except Interrupt:
            done.append(("interrupted", sim.now))

    sim.spawn(holder(sim))
    victim = sim.spawn(queued(sim))
    sim.schedule(2.0, lambda: victim.interrupt("give up"))
    sim.run()
    assert ("interrupted", 2.0) in done
    assert ("holder", 10.0) in done
    assert res.in_use == 0
    assert res.queue_length == 0
    assert res.canceled_count == 1


def test_interrupting_queued_user_does_not_starve_later_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grants = []

    def user(sim, tag, hold):
        yield from res.use(hold)
        grants.append((tag, sim.now))

    sim.spawn(user(sim, "a", 3.0))
    victim = sim.spawn(user(sim, "b", 3.0))
    sim.spawn(user(sim, "c", 3.0))
    sim.schedule(1.0, lambda: victim.interrupt())
    sim.run()
    # b vanished from the queue; c is granted right when a releases.
    assert grants == [("a", 3.0), ("c", 6.0)]


def test_interrupting_granted_user_releases_slot():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    done = []

    def holder(sim):
        try:
            yield from res.use(10.0)
        except Interrupt:
            done.append(("interrupted", sim.now))

    def waiter(sim):
        yield from res.use(1.0)
        done.append(("waiter", sim.now))

    victim = sim.spawn(holder(sim))
    sim.spawn(waiter(sim))
    sim.schedule(2.0, lambda: victim.interrupt())
    sim.run()
    assert done == [("interrupted", 2.0), ("waiter", 3.0)]
    assert res.in_use == 0


def test_server_transfer_interrupted_while_queued():
    sim = Simulator()
    server = Server(sim, capacity=1)
    done = []

    def job(sim, tag, duration):
        try:
            yield from server.transfer(duration)
            done.append((tag, sim.now))
        except Interrupt:
            done.append((f"{tag}-interrupted", sim.now))

    sim.spawn(job(sim, "a", 5.0))
    victim = sim.spawn(job(sim, "b", 5.0))
    sim.spawn(job(sim, "c", 5.0))
    sim.schedule(1.0, lambda: victim.interrupt())
    sim.run()
    assert done == [("b-interrupted", 1.0), ("a", 5.0), ("c", 10.0)]
    assert server.in_use == 0 and server.queue_length == 0
    # Only the two completed jobs count as served.
    assert server.jobs_served == 2


def test_interrupt_before_first_resume():
    sim = Simulator()
    log = []

    def proc(sim):
        log.append("started")
        yield sim.timeout(1.0)

    victim = sim.spawn(proc(sim))
    victim.interrupt("too soon")
    sim.run()
    assert log == []  # never started
    assert victim.triggered and not victim.ok


# -- Resource.cancel accounting ----------------------------------------------


def test_cancel_of_ungranted_request_updates_cancel_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    assert held.triggered
    waiting = res.request()

    def canceler(sim):
        yield sim.timeout(4.0)
        res.cancel(waiting)

    sim.spawn(canceler(sim))
    sim.run()
    assert res.canceled_count == 1
    assert res.canceled_wait_time == pytest.approx(4.0)
    # Granted-request wait statistics are untouched by the cancellation.
    assert res.total_wait_time == 0.0
    assert res.granted_count == 1
    assert waiting._requested_at is None


def test_cancel_of_non_queued_request_raises_clean_error():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="cores")
    granted = res.request()
    with pytest.raises(SimulationError, match="cores") as excinfo:
        res.cancel(granted)
    # `raise ... from None`: the internal ValueError must not leak out.
    assert excinfo.value.__cause__ is None
    assert excinfo.value.__suppress_context__


def test_relinquish_covers_both_granted_and_queued():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted = res.request()
    queued = res.request()
    res.relinquish(queued)
    assert res.canceled_count == 1
    res.relinquish(granted)
    assert res.in_use == 0


# -- Store.get cancellation ---------------------------------------------------


def test_abandoned_getter_would_swallow_item_without_cancel():
    sim = Simulator()
    store = Store(sim)
    abandoned = store.get()
    assert store.cancel(abandoned) is True
    store.put("x")
    # The canceled getter no longer steals the item.
    assert len(store) == 1
    assert store.cancel(abandoned) is False
    assert store.canceled_getters == 1


def test_get_or_timeout_returns_item_in_time():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        yield sim.timeout(1.0)
        store.put("payload")

    def consumer(sim):
        item = yield from store.get_or_timeout(5.0)
        got.append((item, sim.now))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert got == [("payload", 1.0)]


def test_get_or_timeout_expires_and_item_goes_to_live_consumer():
    sim = Simulator()
    store = Store(sim)
    got = []

    def impatient(sim):
        try:
            yield from store.get_or_timeout(1.0)
        except WaitTimeout:
            got.append(("timeout", sim.now))

    def patient(sim):
        item = yield from store.get_or_timeout(10.0)
        got.append((item, sim.now))

    def producer(sim):
        yield sim.timeout(2.0)
        store.put("late-item")

    sim.spawn(impatient(sim))
    sim.spawn(patient(sim))
    sim.spawn(producer(sim))
    sim.run()
    # Without Store.cancel the timed-out getter would swallow the item
    # and `patient` would starve.
    assert got == [("timeout", 1.0), ("late-item", 2.0)]


# -- per-waiter exception isolation ------------------------------------------


def test_each_waiter_gets_its_own_exception_instance():
    sim = Simulator(strict=False)
    shared = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield shared
        except ValueError as exc:
            caught.append(exc)

    sim.spawn(waiter(sim))
    sim.spawn(waiter(sim))
    original = ValueError("boom")
    sim.schedule(1.0, lambda: shared.fail(original))
    sim.run()
    assert len(caught) == 2
    assert caught[0] is not caught[1]
    assert caught[0] is not original
    assert str(caught[0]) == str(caught[1]) == "boom"
    # The stored instance is never mutated by the waiters' tracebacks.
    assert original.__traceback__ is None


def test_condition_failure_does_not_accrete_frames_on_shared_instance():
    sim = Simulator(strict=False)
    bad = sim.event()
    caught = []

    def composite_waiter(sim, make):
        try:
            yield make()
        except ValueError as exc:
            caught.append(exc)

    sim.spawn(composite_waiter(sim, lambda: AllOf(sim, [bad, sim.timeout(5.0)])))
    sim.spawn(composite_waiter(sim, lambda: AnyOf(sim, [bad])))
    original = ValueError("shared")
    sim.schedule(1.0, lambda: bad.fail(original))
    sim.run()
    assert len(caught) == 2
    assert caught[0] is not caught[1]
    assert original.__traceback__ is None


def test_interrupt_cause_survives_per_waiter_copy():
    sim = Simulator()
    seen = []

    def proc(sim):
        try:
            yield sim.timeout(10.0)
        except Interrupt as exc:
            seen.append(exc.cause)

    victim = sim.spawn(proc(sim))
    sim.schedule(1.0, lambda: victim.interrupt({"reason": "deadline"}))
    sim.run()
    assert seen == [{"reason": "deadline"}]
