"""Unit tests for DES resources: Resource, Server, Store, priorities."""

import pytest

from repro.sim import (
    PriorityResource,
    Resource,
    Server,
    SimulationError,
    Simulator,
    Store,
)


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_grants_next_in_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grants = []

    def user(sim, tag, hold):
        req = res.request()
        yield req
        grants.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.spawn(user(sim, "a", 2.0))
    sim.spawn(user(sim, "b", 2.0))
    sim.spawn(user(sim, "c", 2.0))
    sim.run()
    assert grants == [("a", 0.0), ("b", 2.0), ("c", 4.0)]


def test_resource_use_helper_holds_for_duration():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    done = []

    def user(sim, tag):
        yield from res.use(3.0)
        done.append((tag, sim.now))

    sim.spawn(user(sim, 1))
    sim.spawn(user(sim, 2))
    sim.run()
    assert done == [(1, 3.0), (2, 6.0)]


def test_release_unheld_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    stray = res.request()
    with pytest.raises(SimulationError):
        res.release(stray)


def test_cancel_removes_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    queued = res.request()
    res.cancel(queued)
    assert res.queue_length == 0
    with pytest.raises(SimulationError):
        res.cancel(queued)


def test_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_priority_resource_prefers_lowest_priority_number():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    grants = []

    def holder(sim):
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def waiter(sim, tag, priority, arrive):
        yield sim.timeout(arrive)
        req = res.request(priority=priority)
        yield req
        grants.append(tag)
        res.release(req)

    sim.spawn(holder(sim))
    sim.spawn(waiter(sim, "low", 10, 1.0))
    sim.spawn(waiter(sim, "high", 0, 2.0))
    sim.run()
    assert grants == ["high", "low"]


def test_server_serializes_transfers():
    sim = Simulator()
    link = Server(sim, capacity=1)
    ends = []

    def mover(sim, duration):
        yield from link.transfer(duration)
        ends.append(sim.now)

    sim.spawn(mover(sim, 1.0))
    sim.spawn(mover(sim, 1.0))
    sim.spawn(mover(sim, 1.0))
    sim.run()
    assert ends == [1.0, 2.0, 3.0]
    assert link.jobs_served == 3
    assert link.total_service_time == pytest.approx(3.0)


def test_server_parallel_capacity():
    sim = Simulator()
    link = Server(sim, capacity=2)
    ends = []

    def mover(sim):
        yield from link.transfer(1.0)
        ends.append(sim.now)

    for _ in range(4):
        sim.spawn(mover(sim))
    sim.run()
    assert ends == [1.0, 1.0, 2.0, 2.0]


def test_server_utilization_tracks_busy_fraction():
    sim = Simulator()
    link = Server(sim, capacity=1)

    def mover(sim):
        yield from link.transfer(2.0)
        yield sim.timeout(2.0)

    sim.spawn(mover(sim))
    sim.run()
    assert sim.now == 4.0
    assert link.utilization() == pytest.approx(0.5)


def test_server_rejects_negative_duration():
    sim = Simulator()
    link = Server(sim)

    def mover(sim):
        yield from link.transfer(-1.0)

    sim.spawn(mover(sim))
    with pytest.raises(ValueError):
        sim.run()


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def getter(sim):
        item = yield store.get()
        got.append(item)

    sim.spawn(getter(sim))
    sim.run()
    assert got == ["x"]
    assert len(store) == 0


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def putter(sim):
        yield sim.timeout(3.0)
        store.put("late")

    sim.spawn(getter(sim))
    sim.spawn(putter(sim))
    sim.run()
    assert got == [(3.0, "late")]


def test_store_fifo_ordering_across_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    sim.spawn(getter(sim, "g1"))
    sim.spawn(getter(sim, "g2"))

    def putter(sim):
        yield sim.timeout(1.0)
        store.put("first")
        store.put("second")

    sim.spawn(putter(sim))
    sim.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_resource_wait_time_statistics():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim):
        yield from res.use(2.0)

    sim.spawn(user(sim))
    sim.spawn(user(sim))
    sim.run()
    # Second user waited 2.0; first waited 0.
    assert res.total_wait_time == pytest.approx(2.0)
    assert res.granted_count == 2
