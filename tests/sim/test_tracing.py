"""Tests for tracing/metrics utilities."""

import pytest

from repro.sim import (
    Interval,
    PhaseAccumulator,
    Trace,
    geometric_mean,
    summarize_latencies,
)


def test_interval_duration():
    assert Interval(1.0, 3.5, "cpu", "restructure").duration == 2.5


def test_trace_rejects_backwards_interval():
    trace = Trace()
    with pytest.raises(ValueError):
        trace.record(5.0, 4.0, "cpu", "x")


def test_trace_totals_and_filters():
    trace = Trace()
    trace.record(0.0, 1.0, "cpu", "restructure", request_id=1)
    trace.record(1.0, 3.0, "accel", "kernel", request_id=1)
    trace.record(3.0, 4.0, "cpu", "restructure", request_id=2)
    assert trace.total() == pytest.approx(4.0)
    assert trace.total(phase="restructure") == pytest.approx(2.0)
    assert trace.total(actor="accel") == pytest.approx(2.0)
    assert trace.phases() == {"restructure": 2.0, "kernel": 2.0}
    assert len(trace.for_request(1)) == 2


def test_phase_accumulator_fractions():
    acc = PhaseAccumulator(["a", "b"])
    acc.add("a", 3.0)
    acc.add("b", 1.0)
    fractions = acc.fractions()
    assert fractions["a"] == pytest.approx(0.75)
    assert acc.total == pytest.approx(4.0)


def test_phase_accumulator_rejects_negative():
    with pytest.raises(ValueError):
        PhaseAccumulator().add("x", -1.0)


def test_phase_accumulator_merge():
    a = PhaseAccumulator(["x"])
    a.add("x", 1.0)
    b = PhaseAccumulator(["y"])
    b.add("y", 2.0)
    merged = a.merge(b)
    assert merged.totals == {"x": 1.0, "y": 2.0}
    # Originals untouched.
    assert a.totals == {"x": 1.0}


def test_empty_fractions():
    assert PhaseAccumulator(["a"]).fractions() == {}


def test_summarize_latencies():
    summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["p50"] == pytest.approx(2.5)
    assert summary["min"] == 1.0 and summary["max"] == 4.0
    assert summary["count"] == 4
    with pytest.raises(ValueError):
        summarize_latencies([])


def test_summarize_single_sample():
    summary = summarize_latencies([7.0])
    assert summary["p99"] == 7.0


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([5.0]) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_summarize_latencies_includes_p95():
    latencies = [float(i) for i in range(1, 101)]
    summary = summarize_latencies(latencies)
    assert summary["p95"] == pytest.approx(95.05)
    assert summary["p99"] == pytest.approx(99.01)


def test_exact_percentile_shared_helper():
    from repro.sim import exact_percentile

    assert exact_percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert exact_percentile([5.0], 0.99) == 5.0
    with pytest.raises(ValueError):
        exact_percentile([], 0.5)


def test_exact_percentile_matches_serving_tracker():
    # Satellite: one shared quantile implementation — the batch summary
    # and the serving-side LatencyTracker agree on identical samples.
    from repro.serve.slo import LatencyTracker
    from repro.sim import exact_percentile

    samples = [0.7, 0.1, 0.4, 0.9, 0.2, 0.5]
    tracker = LatencyTracker()
    for x in samples:
        tracker.add(x)
    for q in (0.5, 0.95, 0.99):
        assert tracker.percentile(q) == exact_percentile(sorted(samples), q)


def test_trace_for_request_indexed_lookup():
    trace = Trace()
    for rid in (0, 1, 0, 2, 1, 0):
        trace.record(0.0, 1.0, "a", "p", request_id=rid)
    assert len(trace.for_request(0)) == 3
    assert len(trace.for_request(1)) == 2
    assert trace.for_request(99) == []
    # The index mirrors a linear scan exactly.
    assert trace.for_request(2) == [
        iv for iv in trace.intervals if iv.request_id == 2
    ]


def test_trace_faults_indexed_by_request():
    trace = Trace()
    trace.note(1.0, "dma", "retry", site="dma", request_id=3)
    trace.note(2.0, "drx", "fallback", site="drx", request_id=3)
    trace.note(3.0, "dma", "retry", site="dma", request_id=4)
    assert len(trace.faults(request_id=3)) == 2
    assert len(trace.faults(kind="retry", request_id=3)) == 1
    assert trace.faults(request_id=3) == [
        ev for ev in trace.events if ev.request_id == 3
    ]
    assert trace.faults(request_id=99) == []


def test_trace_note_listener_mirrors_every_event():
    seen = []
    trace = Trace(note_listener=seen.append)
    trace.note(1.0, "dma", "retry", site="dma", request_id=7)
    trace.note(2.0, "drx", "timeout", site="drx")
    assert [ev.kind for ev in seen] == ["retry", "timeout"]
    assert seen[0].request_id == 7
