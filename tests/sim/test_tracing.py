"""Tests for tracing/metrics utilities."""

import pytest

from repro.sim import (
    Interval,
    PhaseAccumulator,
    Trace,
    geometric_mean,
    summarize_latencies,
)


def test_interval_duration():
    assert Interval(1.0, 3.5, "cpu", "restructure").duration == 2.5


def test_trace_rejects_backwards_interval():
    trace = Trace()
    with pytest.raises(ValueError):
        trace.record(5.0, 4.0, "cpu", "x")


def test_trace_totals_and_filters():
    trace = Trace()
    trace.record(0.0, 1.0, "cpu", "restructure", request_id=1)
    trace.record(1.0, 3.0, "accel", "kernel", request_id=1)
    trace.record(3.0, 4.0, "cpu", "restructure", request_id=2)
    assert trace.total() == pytest.approx(4.0)
    assert trace.total(phase="restructure") == pytest.approx(2.0)
    assert trace.total(actor="accel") == pytest.approx(2.0)
    assert trace.phases() == {"restructure": 2.0, "kernel": 2.0}
    assert len(trace.for_request(1)) == 2


def test_phase_accumulator_fractions():
    acc = PhaseAccumulator(["a", "b"])
    acc.add("a", 3.0)
    acc.add("b", 1.0)
    fractions = acc.fractions()
    assert fractions["a"] == pytest.approx(0.75)
    assert acc.total == pytest.approx(4.0)


def test_phase_accumulator_rejects_negative():
    with pytest.raises(ValueError):
        PhaseAccumulator().add("x", -1.0)


def test_phase_accumulator_merge():
    a = PhaseAccumulator(["x"])
    a.add("x", 1.0)
    b = PhaseAccumulator(["y"])
    b.add("y", 2.0)
    merged = a.merge(b)
    assert merged.totals == {"x": 1.0, "y": 2.0}
    # Originals untouched.
    assert a.totals == {"x": 1.0}


def test_empty_fractions():
    assert PhaseAccumulator(["a"]).fractions() == {}


def test_summarize_latencies():
    summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["p50"] == pytest.approx(2.5)
    assert summary["min"] == 1.0 and summary["max"] == 4.0
    assert summary["count"] == 4
    with pytest.raises(ValueError):
        summarize_latencies([])


def test_summarize_single_sample():
    summary = summarize_latencies([7.0])
    assert summary["p99"] == 7.0


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([5.0]) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
