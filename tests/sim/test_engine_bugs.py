"""Regression tests for the latent engine bugs fixed in the PR-6 rework.

Each test fails on the pre-rework engine (vendored verbatim in
``benchmarks/_legacy_sim.py``):

* ``AllOf`` over a list whose *first* component was already processed
  triggered before the remaining components were even counted, because
  ``_Condition.__init__`` incremented ``_pending`` one event at a time
  while registering callbacks.
* A ``Timeout`` that lost a race (``Store.get_or_timeout``,
  ``with_timeout``) stayed in the heap, so ``Simulator.run()`` drained
  through it and dragged final ``sim.now`` — and every
  ``Server.utilization()`` denominator — out to the timeout deadline.
* ``Process.interrupt`` detached from the waited-on event with an O(n)
  ``callbacks.remove`` that silently did nothing when the callback was
  absent; the rework makes detach O(1) (stale wakeups are ignored by
  identity) and this file pins interrupt-under-many-waiters behavior.
"""

import pytest

from repro.sim import (
    AllOf,
    Interrupt,
    Server,
    Simulator,
    Store,
    Timeout,
    WaitTimeout,
)


# -- bug 1: AllOf over an already-processed component -------------------------


def test_allof_with_processed_first_component_waits_for_the_rest():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()  # process `done` fully
    assert done.processed

    still_pending = sim.event()
    cond = AllOf(sim, [done, still_pending])
    # The already-processed component fires its callback synchronously
    # during registration; the condition must NOT succeed before the
    # pending component is counted.
    assert not cond.triggered
    still_pending.succeed("late")
    sim.run()
    assert cond.triggered
    assert sorted(cond.value.values()) == ["early", "late"]


def test_allof_all_processed_components_triggers_immediately():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    a.succeed(1)
    b.succeed(2)
    sim.run()
    cond = AllOf(sim, [a, b])
    assert cond.triggered
    assert sorted(cond.value.values()) == [1, 2]


def test_allof_processed_failed_component_fails_condition():
    sim = Simulator(strict=False)
    bad = sim.event()
    bad.fail(RuntimeError("boom"))
    sim.run()
    pending = sim.event()
    cond = AllOf(sim, [bad, pending])
    assert cond.triggered and not cond.ok


# -- bug 2: a lost Timeout drags final sim.now --------------------------------


def test_lost_store_timeout_does_not_drag_final_now():
    sim = Simulator()
    store = Store(sim, name="cmds")
    got = []

    def producer(sim):
        yield sim.timeout(1.0)
        store.put("item")

    def consumer(sim):
        item = yield from store.get_or_timeout(1000.0)
        got.append((sim.now, item))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert got == [(1.0, "item")]
    # The generous unfired 1000 s timeout must not define the end of
    # the simulation.
    assert sim.now == 1.0


def test_lost_timeout_does_not_deflate_server_utilization():
    sim = Simulator()
    server = Server(sim, name="link")
    store = Store(sim)

    def producer(sim):
        yield sim.timeout(1.0)
        store.put("go")

    def worker(sim):
        yield from store.get_or_timeout(999.0)
        yield from server.transfer(1.0)

    sim.spawn(producer(sim))
    sim.spawn(worker(sim))
    sim.run()
    assert sim.now == pytest.approx(2.0)
    # Busy 1 s of a 2 s run: utilization 0.5, not 1/1000th of that.
    assert server.utilization() == pytest.approx(0.5)


def test_canceled_timeout_is_skipped_without_firing():
    sim = Simulator()
    fired = []
    t = Timeout(sim, 5.0)
    t.add_callback(lambda ev: fired.append(sim.now))
    assert t.cancel()
    assert not t.cancel()  # second cancel is a no-op
    sim.run()
    assert fired == []
    assert sim.now == 0.0
    assert sim.peek() == float("inf")


def test_with_timeout_winner_cancels_deadline():
    from repro.faults import with_timeout

    sim = Simulator()
    result = []

    def op(sim):
        yield sim.timeout(2.0)
        return "done"

    def caller(sim):
        value = yield from with_timeout(sim, op(sim), 500.0, what="op")
        result.append((sim.now, value))

    sim.spawn(caller(sim))
    sim.run()
    assert result == [(2.0, "done")]
    assert sim.now == 2.0


def test_with_timeout_deadline_still_fires_when_op_is_slow():
    from repro.faults import with_timeout

    sim = Simulator()
    caught = []

    def op(sim):
        yield sim.timeout(100.0)

    def caller(sim):
        try:
            yield from with_timeout(sim, op(sim), 1.0, what="op")
        except WaitTimeout:
            caught.append(sim.now)

    sim.spawn(caller(sim))
    sim.run()
    assert caught == [1.0]


# -- bug 3: interrupt detach under many waiters -------------------------------


def test_interrupt_under_many_waiters_leaves_others_attached():
    sim = Simulator()
    gate = sim.event()
    woken = []
    interrupted = []

    def waiter(sim, tag):
        try:
            value = yield gate
            woken.append((tag, sim.now, value))
        except Interrupt as exc:
            interrupted.append((tag, sim.now, exc.cause))
            # Keep living past the interrupt; the gate firing later
            # must NOT resume this process a second time.
            yield sim.timeout(50.0)
            woken.append((tag, sim.now, "after-interrupt"))

    procs = [sim.spawn(waiter(sim, tag)) for tag in range(5)]

    def attacker(sim):
        yield sim.timeout(1.0)
        procs[2].interrupt("preempt")

    def opener(sim):
        yield sim.timeout(2.0)
        gate.succeed("open")

    sim.spawn(attacker(sim))
    sim.spawn(opener(sim))
    sim.run()
    assert interrupted == [(2, 1.0, "preempt")]
    # The four surviving waiters woke exactly once, in FIFO order; the
    # interrupted process was not double-resumed by the gate.
    assert woken == [
        (0, 2.0, "open"),
        (1, 2.0, "open"),
        (3, 2.0, "open"),
        (4, 2.0, "open"),
        (2, 51.0, "after-interrupt"),
    ]


def test_double_interrupt_delivers_both_without_double_resume():
    sim = Simulator()
    causes = []

    def victim(sim):
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                causes.append((sim.now, exc.cause))
        yield sim.timeout(1.0)
        causes.append((sim.now, "survived"))

    vp = sim.spawn(victim(sim))

    def attacker(sim):
        yield sim.timeout(1.0)
        vp.interrupt("first")
        vp.interrupt("second")

    sim.spawn(attacker(sim))
    sim.run()
    assert causes == [(1.0, "first"), (1.0, "second"), (2.0, "survived")]


def test_interrupted_then_rewait_same_event_resumes_once():
    sim = Simulator()
    log = []

    def victim(sim, gate):
        try:
            yield gate
            log.append("clean")
        except Interrupt:
            value = yield gate  # wait on the SAME event again
            log.append(("rewait", sim.now, value))

    gate = sim.event()
    vp = sim.spawn(victim(sim, gate))

    def driver(sim):
        yield sim.timeout(1.0)
        vp.interrupt()
        yield sim.timeout(1.0)
        gate.succeed("go")

    sim.spawn(driver(sim))
    sim.run()
    assert log == [("rewait", 2.0, "go")]
