"""Unit tests for the DES engine core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(3.5)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_two_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append((sim.now, tag))

    sim.spawn(proc(sim, 2.0, "b"))
    sim.spawn(proc(sim, 1.0, "a"))
    sim.run()
    assert order == [(1.0, "a"), (2.0, "b")]


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_join_returns_generator_value():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(2.0)
        return 42

    def parent(sim):
        value = yield sim.spawn(child(sim))
        results.append((sim.now, value))

    sim.spawn(parent(sim))
    sim.run()
    assert results == [(2.0, 42)]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    results = []
    gate = sim.event()

    def waiter(sim):
        value = yield gate
        results.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(4.0)
        gate.succeed("open")

    sim.spawn(waiter(sim))
    sim.spawn(opener(sim))
    sim.run()
    assert results == [(4.0, "open")]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_stops_clock_without_processing_later_events():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(10.0)
        seen.append("late")

    sim.spawn(proc(sim))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert seen == []
    sim.run()
    assert seen == ["late"]


def test_allof_waits_for_every_event():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(1.0, "one")
        t2 = sim.timeout(3.0, "two")
        values = yield AllOf(sim, [t1, t2])
        results.append((sim.now, sorted(values.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert results == [(3.0, ["one", "two"])]


def test_anyof_fires_on_first_event():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(1.0, "fast")
        t2 = sim.timeout(9.0, "slow")
        values = yield AnyOf(sim, [t1, t2])
        results.append((sim.now, list(values.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert results == [(1.0, ["fast"])]


def test_allof_empty_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_interrupt_is_delivered_with_cause():
    sim = Simulator()
    caught = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            caught.append((sim.now, exc.cause))

    def attacker(sim, victim_proc):
        yield sim.timeout(2.0)
        victim_proc.interrupt("preempted")

    vp = sim.spawn(victim(sim))
    sim.spawn(attacker(sim, vp))
    sim.run()
    assert caught == [(2.0, "preempted")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    assert not proc.is_alive
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_strict_mode_propagates_process_exception():
    sim = Simulator(strict=True)

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    sim.spawn(bad(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_non_strict_mode_fails_process_event():
    sim = Simulator(strict=False)
    observed = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def watcher(sim, proc):
        try:
            yield proc
        except ValueError as exc:
            observed.append(str(exc))

    proc = sim.spawn(bad(sim))
    sim.spawn(watcher(sim, proc))
    sim.run()
    assert observed == ["boom"]


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 17

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run()


def test_schedule_callback_runs_at_delay():
    sim = Simulator()
    ticks = []
    sim.schedule(2.5, lambda: ticks.append(sim.now))
    sim.run()
    assert ticks == [2.5]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(7.0)
    assert sim.peek() == 7.0
    sim.run()
    assert sim.peek() == float("inf")


def test_chained_timeouts_accumulate():
    sim = Simulator()
    stamps = []

    def proc(sim):
        for _ in range(4):
            yield sim.timeout(0.25)
            stamps.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert stamps == pytest.approx([0.25, 0.5, 0.75, 1.0])
