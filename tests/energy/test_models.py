"""Tests for the system energy model."""

import pytest

from repro.energy import EnergyModel, EnergyParams


def evaluate(model=None, **overrides):
    base = dict(
        elapsed_s=1.0,
        cpu_busy_core_seconds=4.0,
        accelerator_busy_seconds=0.5,
        n_accelerators=2,
        drx_busy_seconds=0.2,
        n_drx_units=2,
        bytes_moved=100 * 1024 * 1024,
        n_switches=1,
    )
    base.update(overrides)
    return (model or EnergyModel()).evaluate(**base)


def test_params_validation():
    with pytest.raises(ValueError):
        EnergyParams(cpu_idle_w=-1.0)


def test_breakdown_components_positive_and_sum():
    breakdown = evaluate()
    parts = breakdown.as_dict()
    assert parts["total"] == pytest.approx(
        sum(v for k, v in parts.items() if k != "total")
    )
    assert all(v >= 0 for v in parts.values())


def test_cpu_energy_scales_with_busy_cores():
    idle = evaluate(cpu_busy_core_seconds=0.0)
    busy = evaluate(cpu_busy_core_seconds=8.0)
    params = EnergyParams()
    assert busy.cpu_j - idle.cpu_j == pytest.approx(
        8.0 * params.cpu_core_active_w
    )


def test_drx_static_power_scales_with_unit_count():
    few = evaluate(n_drx_units=2)
    many = evaluate(n_drx_units=30)
    params = EnergyParams()
    assert many.drx_j - few.drx_j == pytest.approx(28 * params.drx_static_w)


def test_pcie_energy_proportional_to_bytes():
    low = evaluate(bytes_moved=0)
    high = evaluate(bytes_moved=10**9)
    assert low.pcie_transfer_j == 0.0
    assert high.pcie_transfer_j == pytest.approx(
        EnergyParams().pcie_pj_per_byte * 1e-12 * 1e9
    )


def test_zero_elapsed_rejected():
    with pytest.raises(ValueError):
        evaluate(elapsed_s=0.0)


def test_evaluate_system_smoke():
    """End-to-end: run a small system and account its energy."""
    from repro.core import DMXSystem, Mode, SystemConfig
    from tests.core.test_system import make_chain

    system = DMXSystem([make_chain(0)], SystemConfig(mode=Mode.BUMP_IN_WIRE))
    system.run_latency(2)
    breakdown = EnergyModel().evaluate_system(system)
    assert breakdown.total_j > 0
    assert breakdown.drx_j > 0  # BITW has DRX units


def test_dmx_total_energy_below_baseline():
    """The headline Fig. 15 direction at the unit level."""
    from repro.core import DMXSystem, Mode, SystemConfig
    from tests.core.test_system import make_chain

    model = EnergyModel()
    energies = {}
    for mode in (Mode.MULTI_AXL, Mode.BUMP_IN_WIRE):
        system = DMXSystem(
            [make_chain(i) for i in range(4)], SystemConfig(mode=mode)
        )
        result = system.run_latency(2)
        energies[mode] = (
            model.evaluate_system(system).total_j / len(result.records)
        )
    assert energies[Mode.BUMP_IN_WIRE] < energies[Mode.MULTI_AXL]
