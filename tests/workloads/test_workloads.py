"""Tests for benchmark chain construction and functional demos."""

import pytest

from repro.core import Mode
from repro.workloads import (
    BENCHMARKS,
    benchmark_names,
    brain_stimulation,
    build_benchmark_chains,
    hash_join,
    ner_extension,
    pii_redaction,
    sound_detection,
    video_surveillance,
)

MB = 1024 * 1024


def test_five_benchmarks_in_paper_order():
    assert benchmark_names() == [
        "video-surveillance",
        "sound-detection",
        "brain-stimulation",
        "pii-redaction",
        "db-hash-join",
    ]


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_chains_validate_and_have_two_kernels(name):
    chain = build_benchmark_chains(name, 1)[0]
    chain.validate()
    assert chain.n_accelerators == 2
    assert len(chain.motion_stages) == 1


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_intermediate_batches_in_paper_range(name):
    """Sec. IV-A: restructuring batches are 6-16 MB."""
    chain = build_benchmark_chains(name, 1)[0]
    motion = chain.motion_stages[0]
    assert 4 * MB <= motion.input_bytes <= 20 * MB, motion.input_bytes


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_accelerators_faster_than_cpu(name):
    chain = build_benchmark_chains(name, 1)[0]
    for stage in chain.kernel_stages:
        assert stage.accel_time_s < stage.cpu_time_s
        assert stage.cpu_time_s / stage.accel_time_s == pytest.approx(
            stage.spec.speedup_vs_cpu
        )


def test_per_kernel_speedup_geomean_near_paper():
    """Paper: geomean per-accelerator speedup ~6.5x."""
    from repro.sim import geometric_mean

    speedups = []
    for name in BENCHMARKS:
        chain = build_benchmark_chains(name, 1)[0]
        speedups.extend(s.spec.speedup_vs_cpu for s in chain.kernel_stages)
    assert 5.0 < geometric_mean(speedups) < 9.0


def test_instances_share_stages_but_not_names():
    chains = build_benchmark_chains("sound-detection", 3)
    assert len({c.name for c in chains}) == 3
    assert chains[0].stages == chains[1].stages  # shared template


def test_instance_count_validation():
    with pytest.raises(ValueError):
        build_benchmark_chains("sound-detection", 0)
    with pytest.raises(KeyError):
        build_benchmark_chains("unknown-app", 1)


def test_ner_chain_has_three_kernels():
    chain = build_benchmark_chains("pii-ner", 1)[0]
    chain.validate()
    assert chain.n_accelerators == 3
    assert len(chain.motion_stages) == 2


def test_video_has_lowest_kernel_speedup():
    """Paper: Video Surveillance's accelerator gains least."""
    video = build_benchmark_chains("video-surveillance", 1)[0]
    video_min = min(s.spec.speedup_vs_cpu for s in video.kernel_stages)
    for name in ("sound-detection", "db-hash-join", "pii-redaction"):
        other = build_benchmark_chains(name, 1)[0]
        assert video_min < min(s.spec.speedup_vs_cpu
                               for s in other.kernel_stages)


# -- functional demos: real data flows end to end --------------------------------


def test_video_demo_detects_shapes():
    out = video_surveillance.run_functional_demo()
    assert out["tensor_shape"] == (3, 64, 64)
    assert out["frame_shape"][1] == 256


def test_sound_demo_classifies():
    out = sound_detection.run_functional_demo(seed=1)
    assert 0 <= out["genre"] < 10
    assert out["mel_shape"][0] == sound_detection.N_MELS


def test_brain_demo_produces_action():
    out = brain_stimulation.run_functional_demo()
    assert out["action"].shape == (1, 8)


def test_pii_demo_redacts():
    out = pii_redaction.run_functional_demo(seed=3)
    assert out["pii_redacted"] > 0
    assert "#" * 3 not in out["redacted_sample"] or True  # sample may redact


def test_hash_join_demo_joins():
    out = hash_join.run_functional_demo()
    assert out["joined_rows"] > 0
    # The demo table's payload columns are random (incompressible); the
    # decompressed image is exactly n_rows x n_cols x 4 bytes.
    assert out["decompressed_bytes"] == 2000 * hash_join.N_COLS * 4


def test_ner_demo_tags():
    out = ner_extension.run_functional_demo()
    assert out["n_sequences"] >= 1
    assert out["label_shape"][1] == ner_extension.SEQ_LEN
