"""Tests for workload-building helpers."""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.profiles import WorkProfile
from repro.workloads.base import (
    KERNEL_PARALLEL_SPEEDUP,
    MOTION_CPU_THREADS,
    kernel_stage_from_profile,
    motion_stage_from_profiles,
)

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="x", domain="d", speedup_vs_cpu=8.0)


def make_profile(nbytes=4 * MB, ops=10.0):
    return WorkProfile("p", bytes_in=nbytes, bytes_out=nbytes,
                       elements=nbytes // 4, ops_per_element=ops)


def test_kernel_stage_derives_times_consistently():
    stage = kernel_stage_from_profile("k", SPEC, make_profile(),
                                      output_bytes_target=2 * MB)
    # Accelerator time = CPU time / per-kernel speedup.
    assert stage.cpu_time_s / stage.accel_time_s == pytest.approx(8.0)
    # CPU time = serial / kernel-grade parallel speedup.
    assert stage.cpu_serial_time_s / stage.cpu_time_s == pytest.approx(
        KERNEL_PARALLEL_SPEEDUP
    )
    assert stage.output_bytes == 2 * MB


def test_kernel_stage_volume_scale_scales_times():
    small = kernel_stage_from_profile("k", SPEC, make_profile(),
                                      output_bytes_target=MB)
    big = kernel_stage_from_profile("k", SPEC, make_profile(),
                                    output_bytes_target=MB,
                                    volume_scale=4.0)
    assert big.cpu_time_s == pytest.approx(4 * small.cpu_time_s, rel=0.05)


def test_motion_stage_merges_and_preserves_targets():
    profiles = [make_profile(MB), make_profile(2 * MB)]
    stage = motion_stage_from_profiles(
        "m", profiles, input_bytes_target=MB, output_bytes_target=2 * MB
    )
    assert stage.input_bytes == MB
    assert stage.output_bytes == 2 * MB
    assert stage.cpu_threads == MOTION_CPU_THREADS
    # Merged profile keeps the full multi-pass traffic.
    assert stage.profile.total_bytes == 6 * MB
