"""Tests for the DRX ISA definitions and the assembler."""

import pytest

from repro.drx import (
    AddressExpr,
    Instruction,
    Opcode,
    Program,
    ProgramError,
    assemble,
    disassemble,
)


def wrap(*instrs):
    return Program(
        instructions=[Instruction(Opcode.SYNC_START), *instrs,
                      Instruction(Opcode.SYNC_END)],
        name="test",
    )


# -- AddressExpr ---------------------------------------------------------------


def test_address_resolve_affine():
    addr = AddressExpr("buf", base=10, strides=(100, 1))
    assert addr.resolve([2, 5]) == 10 + 200 + 5


def test_address_resolve_fewer_strides_than_loops():
    addr = AddressExpr("buf", base=0, strides=(8,))
    assert addr.resolve([3, 9]) == 24  # inner loop unused


def test_address_too_many_strides_rejected():
    addr = AddressExpr("buf", strides=(1, 2, 3))
    with pytest.raises(ProgramError):
        addr.resolve([0])


def test_address_validation():
    with pytest.raises(ProgramError):
        AddressExpr("", base=0)
    with pytest.raises(ProgramError):
        AddressExpr("buf", base=-1)


# -- Program validation -----------------------------------------------------------


def test_program_requires_sync_bracketing():
    with pytest.raises(ProgramError, match="SYNC.START"):
        Program([Instruction(Opcode.HALT)], name="p").validate()
    with pytest.raises(ProgramError, match="SYNC.END"):
        Program(
            [Instruction(Opcode.SYNC_START), Instruction(Opcode.HALT)],
            name="p",
        ).validate()


def test_program_rejects_unbalanced_loops():
    prog = wrap(Instruction(Opcode.LOOP, count=2))
    with pytest.raises(ProgramError, match="unterminated"):
        prog.validate()
    prog = wrap(Instruction(Opcode.ENDLOOP))
    with pytest.raises(ProgramError, match="unbalanced"):
        prog.validate()


def test_program_rejects_empty():
    with pytest.raises(ProgramError):
        Program([], name="empty").validate()


def test_instruction_operand_validation():
    with pytest.raises(ProgramError):
        Instruction(Opcode.LOOP, count=0).validate(16)
    with pytest.raises(ProgramError):
        Instruction(Opcode.VADD, dst=0, src=1).validate(16)  # missing src2
    with pytest.raises(ProgramError):
        Instruction(Opcode.VADD, dst=99, src=0, src2=1).validate(16)
    with pytest.raises(ProgramError):
        Instruction(Opcode.LD, dst=0, count=8).validate(16)  # missing addr
    with pytest.raises(ProgramError):
        Instruction(Opcode.VRED, dst=0, src=1, reduce_op="xor").validate(16)
    with pytest.raises(ProgramError):
        Instruction(Opcode.TRANS, dst=0, src=1, rows=0, cols=4).validate(16)
    with pytest.raises(ProgramError):
        Instruction(Opcode.VBCAST, dst=0, src=1, count=0).validate(16)


def test_program_counts_histogram():
    prog = wrap(
        Instruction(Opcode.LOOP, count=4),
        Instruction(Opcode.LD, dst=0,
                    addr=AddressExpr("in", strides=(8,)), count=8),
        Instruction(Opcode.VADDI, dst=1, src=0, imm=1.0),
        Instruction(Opcode.ST, addr=AddressExpr("out", strides=(8,)),
                    src=1, count=8),
        Instruction(Opcode.ENDLOOP),
    )
    counts = prog.counts()
    assert counts == {"loop": 2, "memory": 2, "compute": 1, "sync": 2,
                      "other": 0}


# -- assembler ---------------------------------------------------------------


EXAMPLE = """
; scale a buffer by 0.5, tile of 512
SYNC.START
LOOP 16
  LD    v0, in[0,+512], 512
  VMULI v1, v0, 0.5
  ST    out[0,+512], v1, 512
ENDLOOP
SYNC.END
"""


def test_assemble_example_program():
    prog = assemble(EXAMPLE)
    assert len(prog) == 7
    assert prog.instructions[1].opcode == Opcode.LOOP
    ld = prog.instructions[2]
    assert ld.opcode == Opcode.LD
    assert ld.addr.buffer == "in"
    assert ld.addr.strides == (512,)
    assert ld.count == 512


def test_assemble_disassemble_roundtrip():
    prog = assemble(EXAMPLE)
    text = disassemble(prog)
    prog2 = assemble(text)
    assert len(prog2) == len(prog)
    for a, b in zip(prog.instructions, prog2.instructions):
        assert a == b


def test_assemble_st_with_bank_slice():
    text = """
    SYNC.START
    LOOP 4
      LD v0, in[0,+32], 32
      TRANS v1, v0, 4, 8
      LOOP 8
        ST out[0,+4,+16], v1[0,+0,+4], 4
      ENDLOOP
    ENDLOOP
    SYNC.END
    """
    prog = assemble(text)
    st = prog.instructions[5]
    assert st.opcode == Opcode.ST
    assert st.bank_addr is not None
    assert st.bank_addr.strides == (0, 4)
    # Round-trips through disassembly.
    assert assemble(disassemble(prog)).instructions[5] == st


def test_assemble_reports_line_numbers():
    bad = "SYNC.START\nBOGUS v0\nSYNC.END"
    with pytest.raises(ProgramError, match="line 2"):
        assemble(bad)


def test_assemble_rejects_malformed_operands():
    with pytest.raises(ProgramError):
        assemble("SYNC.START\nLD v0, noaddr, 8\nSYNC.END")
    with pytest.raises(ProgramError):
        assemble("SYNC.START\nVADD v0, v1\nSYNC.END")
    with pytest.raises(ProgramError):
        assemble("SYNC.START\nLOOP 2, 3\nSYNC.END")


def test_assemble_vset_and_vbcast():
    text = """
    SYNC.START
    VSET v0, 1.5, 64
    VBCAST v1, v0, 32
    SYNC.END
    """
    prog = assemble(text)
    assert prog.instructions[1].count == 64
    assert prog.instructions[2].opcode == Opcode.VBCAST
    assert assemble(disassemble(prog)).instructions == prog.instructions
