"""Tests for the DRX compiler: IR validation, tiling, CPU/DRX equivalence."""

import numpy as np
import pytest

from repro.drx import (
    BufferDecl,
    Cast,
    DRXCompiler,
    DRXConfig,
    DRXMemory,
    Elementwise,
    ElementwiseBinary,
    FunctionalDRX,
    IRError,
    Kernel,
    MatMul,
    Primitive,
    Transpose2D,
    choose_tile,
    log_compress_kernel,
    mel_projection_kernel,
    normalize_kernel,
    power_spectrum_kernel,
    quantize_kernel,
    sound_motion_kernel,
    transpose_kernel,
    typecast_kernel,
)
from repro.restructuring import (
    LogCompress,
    MelScale,
    Normalize,
    PowerSpectrum,
    Quantize,
    SpectrogramAssembly,
    mel_filterbank,
)


def execute(kernel, inputs, outputs, config=None):
    """Compile + run a kernel; returns the memory image."""
    compiler = DRXCompiler(config or DRXConfig())
    program = compiler.compile(kernel)
    mem = DRXMemory()
    for name, data in inputs.items():
        mem.bind(name, data)
    for name, (n, dtype) in outputs.items():
        mem.allocate(name, n, dtype)
    drx = FunctionalDRX(
        mem,
        n_banks=(config or DRXConfig()).n_banks,
        scratchpad_bytes=(config or DRXConfig()).scratchpad_bytes,
    )
    drx.execute(program)
    return mem, program


# -- IR validation -----------------------------------------------------------


def test_ir_rejects_unknown_primitive():
    with pytest.raises(IRError):
        Primitive("frobnicate")


def test_ir_rejects_missing_immediate():
    with pytest.raises(IRError):
        Primitive("add")
    with pytest.raises(IRError):
        Primitive("sqrt", imm=1.0)


def test_kernel_validates_buffer_references():
    kernel = Kernel(
        name="bad",
        buffers=[BufferDecl("in", 8)],
        statements=[Elementwise("in", "missing")],
    )
    with pytest.raises(IRError, match="no buffer"):
        kernel.validate()


def test_kernel_validates_size_agreement():
    kernel = Kernel(
        name="bad",
        buffers=[BufferDecl("a", 8), BufferDecl("b", 9)],
        statements=[Elementwise("a", "b")],
    )
    with pytest.raises(IRError, match="sizes differ"):
        kernel.validate()


def test_matmul_dimension_validation():
    with pytest.raises(IRError):
        MatMul("a", "b", "c", m=0, k=4, n=4)
    kernel = Kernel(
        name="bad",
        buffers=[BufferDecl("a", 10), BufferDecl("b", 16), BufferDecl("c", 8)],
        statements=[MatMul("a", "b", "c", m=2, k=4, n=4)],
    )
    with pytest.raises(IRError, match="A size"):
        kernel.validate()


def test_choose_tile_lane_aligned_and_bounded():
    config = DRXConfig(lanes=128, scratchpad_bytes=64 * 1024)
    tile = choose_tile(1_000_000, 4, config, live_tiles=2)
    assert tile % 128 == 0
    assert tile * 4 * 2 <= config.scratchpad_bytes
    # Small problems are not over-tiled.
    assert choose_tile(100, 4, config) == 100


# -- compiled-kernel equivalence with numpy restructuring ops ------------------


def test_normalize_matches_numpy_op():
    rng = np.random.default_rng(0)
    x = (rng.random(10_000) * 100).astype(np.float32)
    mem, _ = execute(
        normalize_kernel(10_000, offset=12.5, scale=3.0),
        {"in": x},
        {"out": (10_000, np.float32)},
    )
    expected = Normalize(12.5, 3.0).apply(x)
    np.testing.assert_allclose(mem.read("out"), expected, rtol=1e-6)


def test_quantize_matches_numpy_op():
    rng = np.random.default_rng(1)
    x = rng.standard_normal(5000).astype(np.float32)
    mem, _ = execute(
        quantize_kernel(5000, scale=1 / 127),
        {"in": x},
        {"scaled": (5000, np.float32), "out": (5000, np.int8)},
    )
    expected = Quantize(1 / 127).apply(x)
    np.testing.assert_array_equal(mem.read("out"), expected)


def test_typecast_matches_numpy():
    x = np.arange(1000, dtype=np.int32)
    mem, _ = execute(
        typecast_kernel(1000, "int32", "float32"),
        {"in": x},
        {"out": (1000, np.float32)},
    )
    np.testing.assert_array_equal(mem.read("out"), x.astype(np.float32))


def test_power_spectrum_matches_numpy_op():
    rng = np.random.default_rng(2)
    z = (rng.standard_normal(4096) + 1j * rng.standard_normal(4096)).astype(
        np.complex64
    )
    mem, _ = execute(
        power_spectrum_kernel(4096),
        {"re": z.real.copy(), "im": z.imag.copy()},
        {
            "re2": (4096, np.float32),
            "im2": (4096, np.float32),
            "out": (4096, np.float32),
        },
    )
    expected = PowerSpectrum().apply(z.reshape(1, -1)).reshape(-1)
    np.testing.assert_allclose(mem.read("out"), expected, rtol=1e-5)


def test_log_compress_matches_numpy_op():
    x = np.abs(np.random.default_rng(3).standard_normal(2000)).astype(np.float32)
    mem, _ = execute(
        log_compress_kernel(2000), {"in": x}, {"out": (2000, np.float32)}
    )
    np.testing.assert_allclose(
        mem.read("out"), LogCompress().apply(x), rtol=1e-6
    )


@pytest.mark.parametrize("rows,cols", [(8, 8), (37, 53), (128, 65), (3, 500)])
def test_transpose_matches_numpy(rows, cols):
    rng = np.random.default_rng(4)
    x = rng.random((rows, cols)).astype(np.float32)
    mem, _ = execute(
        transpose_kernel(rows, cols),
        {"in": x},
        {"out": (rows * cols, np.float32)},
    )
    np.testing.assert_array_equal(mem.read("out").reshape(cols, rows), x.T)


@pytest.mark.parametrize("m,k,n", [(4, 8, 16), (8, 33, 21), (16, 65, 12)])
def test_matmul_matches_numpy(m, k, n):
    rng = np.random.default_rng(5)
    a = rng.random((m, k)).astype(np.float32)
    b = rng.random((k, n)).astype(np.float32)
    mem, _ = execute(
        mel_projection_kernel(m, k, n),
        {"bank": a, "spec": b},
        {"out": (m * n, np.float32)},
    )
    np.testing.assert_allclose(
        mem.read("out").reshape(m, n), a @ b, rtol=1e-4
    )


def test_full_sound_motion_kernel_matches_cpu_pipeline():
    """The core DMX invariant: DRX-restructured data == CPU-restructured."""
    rng = np.random.default_rng(6)
    n_frames, n_bins, n_mels = 10, 33, 8
    fft = (
        rng.standard_normal((n_frames, n_bins))
        + 1j * rng.standard_normal((n_frames, n_bins))
    ).astype(np.complex64)

    mel_op = MelScale(n_mels, 16000.0)
    cpu_result = LogCompress().apply(
        mel_op.apply(SpectrogramAssembly().apply(PowerSpectrum().apply(fft)))
    )

    n = n_frames * n_bins
    mem, program = execute(
        sound_motion_kernel(n_frames, n_bins, n_mels),
        {
            "re": fft.real.astype(np.float32),
            "im": fft.imag.astype(np.float32),
            "bank": mel_filterbank(n_mels, n_bins, 16000.0),
        },
        {
            "re2": (n, np.float32),
            "im2": (n, np.float32),
            "power": (n, np.float32),
            "spectrogram": (n, np.float32),
            "mel": (n_mels * n_frames, np.float32),
            "out": (n_mels * n_frames, np.float32),
        },
    )
    drx_result = mem.read("out").reshape(n_mels, n_frames)
    np.testing.assert_allclose(drx_result, cpu_result, rtol=1e-4)
    # Compiled code uses hardware loops, not branches: every instruction is
    # loop/memory/compute/sync.
    counts = program.counts()
    assert counts["other"] == 0
    assert counts["loop"] > 0


def test_compiler_respects_small_scratchpad():
    """Tiny scratchpad forces more, smaller tiles — result unchanged."""
    config = DRXConfig(lanes=16, scratchpad_bytes=2048)
    x = np.arange(4096, dtype=np.float32)
    mem, program = execute(
        normalize_kernel(4096, 0.0, 2.0),
        {"in": x},
        {"out": (4096, np.float32)},
        config=config,
    )
    np.testing.assert_allclose(mem.read("out"), x / 2)
    # More loop iterations than the default config would need.
    loop_counts = [
        i.count for i in program.instructions if i.opcode.value == "LOOP"
    ]
    assert max(loop_counts) >= 16


def test_image_tensor_kernel_matches_numpy_op():
    """DRX image-to-tensor == the CPU ImageToTensor restructuring op."""
    from repro.drx import image_tensor_kernel
    from repro.restructuring import ImageToTensor

    rng = np.random.default_rng(8)
    h, w = 24, 32
    image = rng.integers(0, 255, (h, w, 3)).astype(np.uint8)
    mem, _ = execute(
        image_tensor_kernel(h, w),
        {"in": image},
        {
            "as_float": (h * w * 3, np.float32),
            "normalized": (h * w * 3, np.float32),
            "out": (h * w * 3, np.float32),
        },
    )
    expected = ImageToTensor().apply(image)  # (3, h, w) planar fp32
    np.testing.assert_allclose(
        mem.read("out").reshape(3, h, w), expected, rtol=1e-6
    )


def test_columnar_pivot_kernel_matches_numpy_op():
    """DRX columnar pivot == the CPU RowsToColumnar restructuring op."""
    from repro.drx import columnar_pivot_kernel
    from repro.restructuring import RowsToColumnar

    rng = np.random.default_rng(9)
    n_rows, n_cols = 200, 4
    values = rng.integers(-(2**31), 2**31 - 1, (n_rows, n_cols),
                          dtype=np.int64).astype(np.int32)
    rows_bytes = values.view(np.uint8).reshape(n_rows, n_cols * 4)
    expected = RowsToColumnar(n_cols).apply(rows_bytes)

    mem, _ = execute(
        columnar_pivot_kernel(n_rows, n_cols),
        {"in": values},
        {"out": (n_rows * n_cols, np.int32)},
    )
    np.testing.assert_array_equal(
        mem.read("out").reshape(n_cols, n_rows), expected
    )
