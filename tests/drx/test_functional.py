"""Tests for the functional DRX simulator."""

import numpy as np
import pytest

from repro.drx import (
    AddressExpr,
    DRXMemory,
    FunctionalDRX,
    Instruction,
    Opcode,
    Program,
    ProgramError,
    assemble,
)


def run(text, buffers, outputs):
    mem = DRXMemory()
    for name, data in buffers.items():
        mem.bind(name, data)
    for name, (n, dtype) in outputs.items():
        mem.allocate(name, n, dtype)
    drx = FunctionalDRX(mem)
    stats = drx.execute(assemble(text))
    return mem, stats


def test_simple_scale_program():
    x = np.arange(64, dtype=np.float32)
    mem, stats = run(
        """
        SYNC.START
        LD v0, in[0], 64
        VMULI v1, v0, 2.0
        ST out[0], v1, 64
        SYNC.END
        """,
        {"in": x},
        {"out": (64, np.float32)},
    )
    np.testing.assert_array_equal(mem.read("out"), x * 2)
    assert stats.bytes_loaded == 256
    assert stats.bytes_stored == 256
    assert stats.vector_ops == 64


def test_loop_with_strided_addresses():
    x = np.arange(100, dtype=np.float32)
    mem, stats = run(
        """
        SYNC.START
        LOOP 10
          LD v0, in[0,+10], 10
          VADDI v1, v0, 1.0
          ST out[0,+10], v1, 10
        ENDLOOP
        SYNC.END
        """,
        {"in": x},
        {"out": (100, np.float32)},
    )
    np.testing.assert_array_equal(mem.read("out"), x + 1)
    assert stats.loop_iterations == 10


def test_nested_loops_resolve_both_indices():
    x = np.arange(24, dtype=np.float32).reshape(4, 6)
    mem, _ = run(
        """
        SYNC.START
        LOOP 4
          LOOP 6
            LD v0, in[0,+6,+1], 1
            VMULI v1, v0, 10.0
            ST out[0,+6,+1], v1, 1
          ENDLOOP
        ENDLOOP
        SYNC.END
        """,
        {"in": x},
        {"out": (24, np.float32)},
    )
    np.testing.assert_array_equal(mem.read("out").reshape(4, 6), x * 10)


def test_binary_ops_between_banks():
    a = np.arange(16, dtype=np.float32)
    b = np.full(16, 3.0, dtype=np.float32)
    mem, _ = run(
        """
        SYNC.START
        LD v0, a[0], 16
        LD v1, b[0], 16
        VMUL v2, v0, v1
        VADD v3, v2, v1
        ST out[0], v3, 16
        SYNC.END
        """,
        {"a": a, "b": b},
        {"out": (16, np.float32)},
    )
    np.testing.assert_array_equal(mem.read("out"), a * 3 + 3)


def test_vmac_accumulates():
    mem, _ = run(
        """
        SYNC.START
        VSET v0, 1.0, 8
        VSET v1, 2.0, 8
        VSET v2, 10.0, 8
        VMAC v2, v0, v1
        ST out[0], v2, 8
        SYNC.END
        """,
        {},
        {"out": (8, np.float32)},
    )
    np.testing.assert_array_equal(mem.read("out"), np.full(8, 12.0))


def test_vred_sum():
    x = np.arange(10, dtype=np.float32)
    mem, _ = run(
        """
        SYNC.START
        LD v0, in[0], 10
        VRED v1, v0, sum
        ST out[0], v1, 1
        SYNC.END
        """,
        {"in": x},
        {"out": (1, np.float32)},
    )
    assert mem.read("out")[0] == pytest.approx(45.0)


def test_vcvt_changes_dtype():
    x = np.array([1.7, -2.3, 100.9], dtype=np.float32)
    mem, _ = run(
        """
        SYNC.START
        LD v0, in[0], 3
        VROUND v1, v0
        VCVT v2, v1, int32
        ST out[0], v2, 3
        SYNC.END
        """,
        {"in": x},
        {"out": (3, np.int32)},
    )
    np.testing.assert_array_equal(mem.read("out"), [2, -2, 101])


def test_transpose_engine():
    x = np.arange(12, dtype=np.float32)
    mem, stats = run(
        """
        SYNC.START
        LD v0, in[0], 12
        TRANS v1, v0, 3, 4
        ST out[0], v1, 12
        SYNC.END
        """,
        {"in": x},
        {"out": (12, np.float32)},
    )
    np.testing.assert_array_equal(
        mem.read("out").reshape(4, 3), x.reshape(3, 4).T
    )
    assert stats.transpose_elements == 12


def test_st_bank_slice():
    x = np.arange(8, dtype=np.float32)
    mem, _ = run(
        """
        SYNC.START
        LD v0, in[0], 8
        LOOP 2
          ST out[0,+4], v0[4,+0], 4
        ENDLOOP
        SYNC.END
        """,
        {"in": x},
        {"out": (8, np.float32)},
    )
    # Bank slice [4:8] stored twice at offsets 0 and 4.
    np.testing.assert_array_equal(mem.read("out"), [4, 5, 6, 7, 4, 5, 6, 7])


def test_out_of_bounds_load_raises():
    with pytest.raises(ProgramError, match="out of bounds"):
        run(
            "SYNC.START\nLD v0, in[0], 100\nSYNC.END",
            {"in": np.zeros(10, dtype=np.float32)},
            {},
        )


def test_uninitialized_bank_read_raises():
    with pytest.raises(ProgramError, match="uninitialized"):
        run(
            "SYNC.START\nVADDI v1, v0, 1.0\nSYNC.END",
            {},
            {},
        )


def test_scratchpad_overflow_raises():
    mem = DRXMemory()
    mem.bind("in", np.zeros(100_000, dtype=np.float32))
    drx = FunctionalDRX(mem, scratchpad_bytes=1024)
    prog = assemble("SYNC.START\nLD v0, in[0], 100000\nSYNC.END")
    with pytest.raises(ProgramError, match="scratchpad overflow"):
        drx.execute(prog)


def test_dram_capacity_enforced():
    mem = DRXMemory(capacity_bytes=1000)
    with pytest.raises(MemoryError):
        mem.bind("big", np.zeros(1000, dtype=np.float32))


def test_tile_length_mismatch_raises():
    with pytest.raises(ProgramError, match="mismatch"):
        run(
            """
            SYNC.START
            VSET v0, 1.0, 8
            VSET v1, 1.0, 4
            VADD v2, v0, v1
            SYNC.END
            """,
            {},
            {},
        )
