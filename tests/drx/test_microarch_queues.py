"""Tests for DRX timing model, device occupancy, and data queues."""

import numpy as np
import pytest

from repro.drx import (
    DEFAULT_DRX,
    DRX_MEMORY_BYTES,
    MAX_ACCELERATORS,
    QUEUE_BYTES,
    DRXCompiler,
    DRXConfig,
    DRXDevice,
    DRXMemory,
    DRXTimingModel,
    DataQueue,
    FunctionalDRX,
    QueueFullError,
    QueuePartition,
    normalize_kernel,
)
from repro.profiles import WorkProfile
from repro.sim import Simulator

MB = 1024 * 1024


def profile(ops_per_element=10.0, total_mb=12, vectorizable=1.0):
    bytes_total = total_mb * MB
    return WorkProfile(
        name="restructure",
        bytes_in=bytes_total * 2 // 3,
        bytes_out=bytes_total // 3,
        elements=bytes_total // 6,
        ops_per_element=ops_per_element,
        vectorizable_fraction=vectorizable,
    )


# -- config ------------------------------------------------------------------


def test_default_config_matches_paper():
    assert DEFAULT_DRX.lanes == 128
    assert DEFAULT_DRX.frequency_hz == pytest.approx(1e9)
    assert DEFAULT_DRX.scratchpad_bytes == 64 * 1024
    assert DEFAULT_DRX.dram_bandwidth == pytest.approx(25e9)
    assert DEFAULT_DRX.dram_bytes == 8 * 1024**3


def test_config_validation():
    with pytest.raises(ValueError):
        DRXConfig(lanes=0)
    with pytest.raises(ValueError):
        DRXConfig(compute_efficiency=1.5)
    with pytest.raises(ValueError):
        DRXConfig(dram_bandwidth=-1)


# -- timing ------------------------------------------------------------------


def test_memory_bound_profile_times_at_bandwidth():
    model = DRXTimingModel()
    p = profile(ops_per_element=1.0)  # memory-bound
    t = model.time_for_profile(p)
    expected = p.total_bytes / DEFAULT_DRX.dram_bandwidth
    assert t == pytest.approx(
        expected + DEFAULT_DRX.kernel_launch_overhead_s, rel=0.01
    )
    assert model.bound_for_profile(p) == "memory"


def test_compute_bound_profile_scales_with_lanes():
    p = profile(ops_per_element=400.0)  # compute-bound
    t128 = DRXTimingModel(DRXConfig(lanes=128)).time_for_profile(p)
    t32 = DRXTimingModel(DRXConfig(lanes=32)).time_for_profile(p)
    assert t32 == pytest.approx(4 * t128, rel=0.05)
    assert DRXTimingModel().bound_for_profile(p) == "compute"


def test_memory_bound_profile_insensitive_to_lanes():
    """Fig. 18's saturation mechanism: past the roofline knee, more lanes
    buy nothing."""
    p = profile(ops_per_element=1.0)
    t128 = DRXTimingModel(DRXConfig(lanes=128)).time_for_profile(p)
    t256 = DRXTimingModel(DRXConfig(lanes=256)).time_for_profile(p)
    assert t256 == pytest.approx(t128, rel=0.01)


def test_scalar_work_is_much_slower():
    vec = profile(ops_per_element=50.0, vectorizable=1.0)
    scalar = profile(ops_per_element=50.0, vectorizable=0.0)
    model = DRXTimingModel()
    assert model.time_for_profile(scalar) > 10 * model.time_for_profile(vec)


def test_time_from_stats_consistent_with_functional_run():
    kernel = normalize_kernel(100_000, 0.0, 2.0)
    program = DRXCompiler().compile(kernel)
    mem = DRXMemory()
    mem.bind("in", np.ones(100_000, dtype=np.float32))
    mem.allocate("out", 100_000, np.float32)
    drx = FunctionalDRX(mem)
    stats = drx.execute(program)
    t = DRXTimingModel().time_from_stats(stats)
    # 800 KB through 25 GB/s is ~32 us plus launch overhead.
    assert 2e-6 < t < 1e-3


def test_drx_device_serializes_jobs():
    sim = Simulator()
    device = DRXDevice(sim)
    p = profile()
    done = []

    def job(sim):
        t = yield from device.restructure(p)
        done.append(sim.now)

    sim.spawn(job(sim))
    sim.spawn(job(sim))
    sim.run()
    solo = device.timing.time_for_profile(p)
    assert done[0] == pytest.approx(solo)
    assert done[1] == pytest.approx(2 * solo)
    assert device.jobs_completed == 2


# -- queues ------------------------------------------------------------------


def test_queue_capacity_provisioning_supports_40_accelerators():
    # Paper: 8 GB per DRX, 100 MB per RX/TX pair, up to 40 accelerators.
    from repro.drx.queues import QUEUE_PAIR_BYTES

    assert QUEUE_PAIR_BYTES == 100 * MB
    assert QUEUE_BYTES == 50 * MB
    assert DRX_MEMORY_BYTES == 8 * 1024**3
    assert MAX_ACCELERATORS == 40


def test_data_queue_enqueue_dequeue_fifo():
    q = DataQueue("q", capacity_bytes=1000)
    a = q.enqueue(300)
    b = q.enqueue(400)
    assert (a, b) == (0, 300)
    assert q.used_bytes == 700
    offset, size = q.dequeue()
    assert (offset, size) == (0, 300)
    assert q.free_bytes == 600


def test_data_queue_overflow_raises():
    q = DataQueue("q", capacity_bytes=100)
    q.enqueue(80)
    with pytest.raises(QueueFullError):
        q.enqueue(30)


def test_data_queue_validation():
    q = DataQueue("q")
    with pytest.raises(ValueError):
        q.enqueue(0)
    with pytest.raises(IndexError):
        q.dequeue()


def test_partition_creates_pair_per_peer():
    part = QueuePartition("drx0", ["accel0", "accel1"], ["drx1"])
    assert sorted(part.peers) == ["accel0", "accel1", "drx1"]
    assert part.rx_for("accel0") is not part.tx_for("accel0")
    with pytest.raises(KeyError):
        part.rx_for("stranger")


def test_partition_enforces_memory_budget():
    many_peers = [f"a{i}" for i in range(100)]
    with pytest.raises(MemoryError):
        QueuePartition("drx0", many_peers)
