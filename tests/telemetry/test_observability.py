"""The observation plane end to end: artifact v2, CLI, export, identity.

Integration-level pins for ISSUE 8's acceptance criteria:

* schema-2 artifacts append observation sections as a strict byte
  suffix (an unarmed artifact is a byte-prefix of the armed one);
* v1 artifacts still load and report;
* the armed run's simulation outputs are identical to the unarmed
  run's (the observation pass is post hoc);
* the CLI grows report/diff/dashboard subcommands while the legacy
  positional spelling keeps working;
* the Perfetto export carries rollup counter tracks and alert instants.
"""

import json
import os

import pytest

from repro.core.placement import Mode
from repro.serve.sweep import SweepConfig, run_sweep
from repro.telemetry import (
    SCHEMA_VERSION,
    AlertConfig,
    ObservationConfig,
    RollupConfig,
    SamplingConfig,
    chrome_trace,
    load_artifact,
    render_report,
    report_dict,
    validate_artifact,
)
from repro.telemetry.__main__ import main as cli_main


def sweep_config(tmp_path, observation=None, sampling=None, **kwargs):
    defaults = dict(
        offered_loads_rps=(150.0,),
        modes=(Mode.BUMP_IN_WIRE,),
        requests_per_tenant=12,
        seed=0,
        slo_s=50e-3,
        artifact_dir=str(tmp_path),
        observation=observation,
        sampling=sampling,
    )
    defaults.update(kwargs)
    return SweepConfig(**defaults)


def artifact_path(tmp_path):
    return str(tmp_path / "bump-in-the-wire-drx-pt0.jsonl")


OBSERVED = ObservationConfig(
    rollup=RollupConfig(window_s=10e-3), alerts=AlertConfig()
)


def test_armed_artifact_is_strict_superset_of_unarmed(tmp_path):
    plain_dir = tmp_path / "plain"
    armed_dir = tmp_path / "armed"
    plain = run_sweep(sweep_config(plain_dir))
    armed = run_sweep(sweep_config(armed_dir, observation=OBSERVED))
    # simulation outcome identical: observation is strictly post hoc
    assert plain.to_json() == armed.to_json()
    with open(artifact_path(plain_dir), "rb") as fh:
        plain_bytes = fh.read()
    with open(artifact_path(armed_dir), "rb") as fh:
        armed_bytes = fh.read()
    assert armed_bytes.startswith(plain_bytes)
    assert len(armed_bytes) > len(plain_bytes)


def test_observed_artifact_round_trips(tmp_path):
    run_sweep(sweep_config(tmp_path, observation=OBSERVED))
    path = artifact_path(tmp_path)
    assert validate_artifact(path) == []
    art = load_artifact(path)
    assert art.schema == SCHEMA_VERSION == 2
    assert art.rollups is not None
    assert art.rollups.window_s == 10e-3
    assert art.rollups.slo_s == 50e-3
    assert art.rollups.keys("tenant")
    assert art.rollups.keys("site")
    assert art.observation is not None
    # rollup stats survive the disk round trip exactly
    from repro.telemetry import compute_rollups

    recomputed = compute_rollups(
        art, RollupConfig(window_s=10e-3), slo_s=50e-3
    )
    assert json.dumps(list(art.rollups.to_rows()), sort_keys=True) == \
        json.dumps(list(recomputed.to_rows()), sort_keys=True)


def test_observed_artifacts_are_byte_deterministic(tmp_path):
    one = tmp_path / "one"
    two = tmp_path / "two"
    run_sweep(sweep_config(one, observation=OBSERVED))
    run_sweep(sweep_config(two, observation=OBSERVED))
    with open(artifact_path(one), "rb") as fh:
        a = fh.read()
    with open(artifact_path(two), "rb") as fh:
        b = fh.read()
    assert a == b


def test_v1_artifact_still_loads_and_reports(tmp_path):
    run_sweep(sweep_config(tmp_path))
    path = artifact_path(tmp_path)
    # rewrite as a v1 artifact: v2 minus the version bump (no
    # observation rows exist on an unarmed run)
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    meta = json.loads(lines[0])
    assert meta["schema"] == 2
    meta["schema"] = 1
    lines[0] = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    v1_path = str(tmp_path / "v1.jsonl")
    with open(v1_path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write("\n".join(lines) + "\n")
    assert validate_artifact(v1_path) == []
    art = load_artifact(v1_path)
    assert art.schema == 1
    assert art.rollups is None
    assert art.alerts == []
    assert art.observation is None
    assert art.sampling is None
    render_report(art)
    report_dict(art)
    assert "rollups" not in report_dict(art)


def test_unknown_schema_is_rejected(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"kind":"meta","meta":{},"schema":0}\n')
    assert validate_artifact(path)
    with pytest.raises(ValueError):
        load_artifact(path)


def test_sampling_filters_traces_but_keeps_metrics(tmp_path):
    full_dir = tmp_path / "full"
    sampled_dir = tmp_path / "sampled"
    run_sweep(sweep_config(full_dir, observation=OBSERVED))
    run_sweep(sweep_config(
        sampled_dir, observation=OBSERVED,
        sampling=SamplingConfig(keep_fraction=0.3, seed=5),
    ))
    full = load_artifact(artifact_path(full_dir))
    sampled = load_artifact(artifact_path(sampled_dir))
    assert len(sampled.spans) < len(full.spans)
    assert sampled.counters == full.counters  # metrics never sampled
    books = sampled.sampling
    assert books["sampled_out"] > 0
    assert books["kept"] + books["sampled_out"] == len(full.request_ids())
    assert validate_artifact(artifact_path(sampled_dir)) == []


def test_export_carries_rollup_counters_and_alert_instants():
    from repro.telemetry import AlertEvent, RunArtifact
    from repro.telemetry.rollup import RollupWindow, RunRollups
    from repro.telemetry.spans import ROOT_PARENT, Span

    art = RunArtifact(schema=2, meta={}, spans=[
        Span(1, ROOT_PARENT, 0, "req", "client", "a", "", 0.0, 1e-3,
             {"tenant": "a"}),
    ])
    art.rollups = RunRollups(
        window_s=10e-3, quantiles=(0.99,), slo_s=5e-3,
        windows=[RollupWindow("tenant", "a", 0, 0.0, 10e-3,
                              {"completed": 3, "p99_s": 2e-3})],
    )
    art.alerts = [AlertEvent(
        time=10e-3, tenant="a", state="fire", window=0, fast_burn=3.0,
        slow_burn=1.5, span_s=10e-3, cause="restructuring@drx0",
        site="drx0", phase="restructuring", share=0.8,
    )]
    trace = chrome_trace(art)
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert counters and counters[0]["name"] == "tenant:a"
    assert counters[0]["args"] == {"completed": 3, "p99_s": 2e-3}
    alerts = [e for e in trace["traceEvents"]
              if e.get("cat") == "alert"]
    assert len(alerts) == 1
    assert alerts[0]["name"] == "fire:a"
    assert alerts[0]["args"]["cause"] == "restructuring@drx0"
    # the alerts track is named in the thread metadata
    names = [e["args"]["name"] for e in trace["traceEvents"]
             if e["ph"] == "M"]
    assert "alerts" in names


def test_cli_report_json_and_subcommands(tmp_path, capsys):
    run_sweep(sweep_config(tmp_path, observation=OBSERVED))
    path = artifact_path(tmp_path)

    # legacy positional spelling still works
    assert cli_main([path]) == 0
    capsys.readouterr()
    assert cli_main([path, "--validate"]) == 0
    capsys.readouterr()

    assert cli_main(["report", path, "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 2
    assert "phase_totals_s" in doc
    assert "site_critical_path_s" in doc
    assert "rollups" in doc

    assert cli_main(["diff", path, path, "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["verdict"]["top_regression"] == ""

    out_svg = str(tmp_path / "dash.svg")
    assert cli_main(["dashboard", path, "-o", out_svg]) == 0
    capsys.readouterr()
    with open(out_svg, "r", encoding="utf-8") as fh:
        svg = fh.read()
    assert svg.startswith("<svg")
    assert "windowed p99 per tenant" in svg


def test_dashboard_bytes_are_deterministic(tmp_path):
    run_sweep(sweep_config(tmp_path, observation=OBSERVED))
    art = load_artifact(artifact_path(tmp_path))
    from repro.telemetry import render_dashboard

    one = render_dashboard(art, str(tmp_path / "one.svg"))
    two = render_dashboard(art, str(tmp_path / "two.svg"))
    with open(one, "rb") as fh:
        a = fh.read()
    with open(two, "rb") as fh:
        b = fh.read()
    assert a == b


def test_serve_result_carries_observation_output(tmp_path):
    from repro.serve.sweep import run_sweep_point

    cfg = sweep_config(tmp_path, observation=OBSERVED)
    run_sweep_point(cfg, Mode.BUMP_IN_WIRE, 0)
    art = load_artifact(artifact_path(tmp_path))
    assert art.rollups is not None
    # report renders the alert timeline section only when alerts fired
    report = render_report(art)
    if art.alerts:
        assert "alert timeline" in report
