"""Burn-rate alerts: firing logic, hysteresis dwell, root-cause keys."""

import pytest

from repro.telemetry import (
    AlertConfig,
    AlertEvent,
    ObservationConfig,
    RunArtifact,
    evaluate_alerts,
    observe_run,
)
from repro.telemetry.alerts import pick_cause
from repro.telemetry.rollup import RollupWindow, RunRollups
from repro.telemetry.spans import ROOT_PARENT, Instant, Span

W = 10e-3
SLO = 5e-3


def tenant_windows(cells):
    """RunRollups from per-window (completed, violations) pairs."""
    windows = [
        RollupWindow(
            "tenant", "a", i, i * W, (i + 1) * W,
            {"completed": completed, "violations": violations},
        )
        for i, (completed, violations) in enumerate(cells)
    ]
    return RunRollups(window_s=W, quantiles=(0.99,), slo_s=SLO,
                      windows=windows)


def empty_source():
    return RunArtifact(schema=2, meta={})


CFG = AlertConfig(
    budget=0.10, fast_windows=1, slow_windows=3, fast_burn=2.0,
    slow_burn=1.0, min_count=4, clear_after=2,
)


def test_fires_when_fast_and_slow_windows_both_burn():
    # 10 completions/window; window 2 has 4 violations: fast burn
    # 4/10/0.1 = 4x, slow burn 4/30/0.1 = 1.33x -> fire.
    rollups = tenant_windows([(10, 0), (10, 0), (10, 4)])
    events = evaluate_alerts(empty_source(), rollups, CFG)
    assert [e.state for e in events] == ["fire"]
    (fire,) = events
    assert fire.tenant == "a"
    assert fire.window == 2
    assert fire.fast_burn == pytest.approx(4.0)
    assert fire.slow_burn == pytest.approx(4 / 30 / 0.1)
    assert fire.span_s == pytest.approx(3 * W)


def test_slow_window_filters_one_window_blips():
    # Same fast breach, but a long clean history dilutes the slow burn
    # below 1x -> no fire.
    rollups = tenant_windows([(30, 0), (30, 0), (10, 3)])
    assert evaluate_alerts(empty_source(), rollups, CFG) == []


def test_min_count_gates_idle_runs():
    # One slow request in an idle run is not an incident.
    rollups = tenant_windows([(0, 0), (0, 0), (1, 1)])
    assert evaluate_alerts(empty_source(), rollups, CFG) == []


def test_no_slo_means_no_alerts():
    rollups = tenant_windows([(10, 10)])
    rollups.slo_s = None
    assert evaluate_alerts(empty_source(), rollups, CFG) == []


def test_hysteresis_dwell_rides_through_one_calm_window():
    # fire at window 2; window 3 calm (calm=1 < clear_after=2);
    # window 4 burns again (calm resets); windows 5-6 calm -> clear at 6.
    rollups = tenant_windows([
        (10, 0), (10, 0), (10, 4), (10, 0), (10, 4), (10, 0), (10, 0),
    ])
    events = evaluate_alerts(empty_source(), rollups, CFG)
    assert [(e.state, e.window) for e in events] == [
        ("fire", 2), ("clear", 6),
    ]


def test_refires_after_a_clear():
    rollups = tenant_windows([
        (10, 0), (10, 0), (10, 4), (10, 0), (10, 0),  # fire@2, clear@4
        (10, 0), (10, 0), (10, 0), (10, 4),           # dilute, refire@8
    ])
    events = evaluate_alerts(empty_source(), rollups, CFG)
    assert [(e.state, e.window) for e in events] == [
        ("fire", 2), ("clear", 4), ("fire", 8),
    ]


def test_pick_cause_skips_queue_and_idle_symptoms():
    key, share = pick_cause({
        "queue": 10.0, "idle": 5.0, "restructuring@drx0": 3.0,
        "kernel@a0": 2.0,
    })
    assert key == "restructuring@drx0"
    assert share == pytest.approx(3.0 / 20.0)
    # all-symptom attribution falls back rather than returning nothing
    key, _ = pick_cause({"queue": 2.0, "idle": 1.0})
    assert key == "queue"
    assert pick_cause({}) == ("", 0.0)


def test_fire_attributes_to_the_dominant_site():
    # A violating client whose wall time is dominated by a DRX
    # restructuring leaf, with some queue wait in front of it.
    spans = [
        Span(1, ROOT_PARENT, 7, "req:a", "client", "a", "",
             0.0, 9e-3, {"tenant": "a"}),
        Span(2, 1, 7, "admit", "queue", "a", "queue", 0.0, 3e-3),
        Span(3, 1, 7, "drx", "restructuring", "drx0", "restructuring",
             3e-3, 9e-3),
    ]
    # enough healthy traffic behind it to pass min_count
    for i in range(8):
        spans.append(Span(
            10 + i, ROOT_PARENT, 20 + i, "req:a", "client", "a", "",
            0.0, 1e-3, {"tenant": "a"},
        ))
    source = RunArtifact(
        schema=2, meta={}, spans=spans,
        instants=[Instant(time=4e-3, name="breaker_open",
                          category="breaker", actor="drx0")],
    )
    rollups = tenant_windows([(9, 4)])
    cfg = AlertConfig(budget=0.10, fast_windows=1, slow_windows=1,
                      fast_burn=2.0, slow_burn=1.0, min_count=4)
    (fire,) = evaluate_alerts(source, rollups, cfg)
    assert fire.state == "fire"
    assert fire.cause == "restructuring@drx0"
    assert fire.phase == "restructuring"
    assert fire.site == "drx0"
    assert fire.share > 0.5
    assert "queue@a" in fire.attribution  # symptom present, never ranked
    assert fire.events == ["breaker_open@drx0"]
    assert "restructuring on drx0" in fire.describe()
    assert "tenant a" in fire.describe()


def test_alert_row_round_trip():
    fire = AlertEvent(
        time=0.03, tenant="a", state="fire", window=2, fast_burn=4.0,
        slow_burn=1.3, span_s=0.03, cause="restructuring@drx0",
        site="drx0", phase="restructuring", share=0.7,
        attribution={"restructuring@drx0": 1.0}, events=["fault@drx0"],
    )
    row = fire.to_row()
    assert row["kind"] == "alert"
    again = AlertEvent.from_row(row)
    assert again.to_row() == row


def test_observe_run_computes_both_and_honors_alerts_off():
    source = RunArtifact(schema=2, meta={"slo_s": SLO}, spans=[
        Span(1, ROOT_PARENT, 0, "req:a", "client", "a", "",
             0.0, 1e-3, {"tenant": "a"}),
    ])
    rollups, alerts = observe_run(source)
    assert rollups.slo_s == SLO
    assert rollups.keys("tenant") == ["a"]
    assert alerts == []
    rollups2, alerts2 = observe_run(
        source, ObservationConfig(alerts=None)
    )
    assert alerts2 == []


def test_config_validation():
    with pytest.raises(ValueError):
        AlertConfig(budget=0.0)
    with pytest.raises(ValueError):
        AlertConfig(fast_windows=3, slow_windows=2)
    with pytest.raises(ValueError):
        AlertConfig(min_count=0)
    with pytest.raises(ValueError):
        AlertConfig(clear_after=0)
