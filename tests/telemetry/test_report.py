"""Reports: phase reconciliation, critical-path attribution, rendering."""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.faults import FaultPlan, FaultPolicy
from repro.telemetry import (
    IDLE_KEY,
    critical_path,
    critical_path_summary,
    load_artifact,
    on_critical_path,
    phase_totals,
    render_report,
    run_phase_totals,
    waterfall,
    write_artifact,
)
from repro.telemetry.__main__ import main as report_main
from repro.telemetry.spans import ROOT_PARENT, Span
from repro.workloads import build_benchmark_chains

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

ACCEPTANCE_PLAN = FaultPlan(
    seed=42,
    dma=FaultPolicy(fail_p=0.10),
    drx=FaultPolicy(hang_p=0.05),
    drx_deadline_s=30e-3,
)


def make_chain(i=0, in_mb=12, out_mb=6):
    from repro.profiles import WorkProfile

    profile = WorkProfile(
        name="motion", bytes_in=2 * in_mb * MB, bytes_out=out_mb * MB,
        elements=in_mb * MB // 4, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=5e-3, accel_time_s=1e-3,
                        output_bytes=in_mb * MB),
            MotionStage("m", profile, input_bytes=in_mb * MB,
                        output_bytes=out_mb * MB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=4e-3, accel_time_s=8e-4,
                        output_bytes=MB),
        ],
    )


def build(mode, n_apps=2, faults=None):
    return DMXSystem(
        [make_chain(i) for i in range(n_apps)],
        SystemConfig(mode=mode),
        faults=faults,
    )


def assert_reconciles(result):
    """Span-derived phase totals match the accumulator books exactly."""
    want = result.phase_totals()
    got = phase_totals(result.telemetry.spans)
    for phase, seconds in want.items():
        assert got.get(phase, 0.0) == pytest.approx(seconds, abs=1e-9), phase
    assert not set(got) - set(want)


@pytest.mark.parametrize("mode", list(Mode))
def test_phase_totals_reconcile_every_mode(mode):
    system = build(mode)
    assert_reconciles(system.run_latency(requests_per_app=2))
    assert system.telemetry.tracker.open_count == 0


@pytest.mark.parametrize(
    "mode", [Mode.MULTI_AXL, Mode.BUMP_IN_WIRE, Mode.PCIE_INTEGRATED]
)
def test_phase_totals_reconcile_under_faults(mode):
    system = build(mode, faults=ACCEPTANCE_PLAN)
    result = system.run_throughput(requests_per_app=4)
    assert_reconciles(result)
    assert system.telemetry.tracker.open_count == 0


def test_reconciliation_survives_artifact_round_trip(tmp_path):
    result = build(Mode.BUMP_IN_WIRE).run_latency(requests_per_app=2)
    path = tmp_path / "run.jsonl"
    write_artifact(str(path), result.telemetry, meta={})
    totals = run_phase_totals(load_artifact(str(path)))
    for phase, seconds in result.phase_totals().items():
        assert totals.get(phase, 0.0) == pytest.approx(seconds, abs=1e-9)


# -- critical path -------------------------------------------------------------


def span(span_id, parent, start, end, phase="", name="s", cat="x"):
    return Span(
        span_id=span_id, parent_id=parent, request_id=0, name=name,
        category=cat, actor="", phase=phase, start=start, end=end, attrs={},
    )


def test_critical_path_charges_most_recent_leaf():
    spans = [
        span(0, ROOT_PARENT, 0.0, 10.0, name="req", cat="request"),
        span(1, 0, 0.0, 6.0, phase="movement"),
        span(2, 0, 4.0, 9.0, phase="kernel"),
    ]
    attribution = critical_path(spans)
    # movement holds [0,4), kernel (started later) wins [4,9), the last
    # second has no active leaf.
    assert attribution == pytest.approx(
        {"movement": 4.0, "kernel": 5.0, IDLE_KEY: 1.0}
    )


def test_critical_path_inherits_phase_from_ancestor():
    spans = [
        span(0, ROOT_PARENT, 0.0, 4.0, phase="movement", name="motion"),
        span(1, 0, 0.0, 4.0, name="dma-leg", cat="dma"),
    ]
    assert critical_path(spans) == pytest.approx({"movement": 4.0})


def test_critical_path_excludes_abandoned_subtrees():
    dead = span(1, 0, 0.0, 3.0, phase="restructuring")
    dead.attrs["abandoned"] = True
    spans = [
        span(0, ROOT_PARENT, 0.0, 4.0, name="req", cat="request"),
        dead,
        span(2, 0, 0.0, 4.0, phase="recovery"),
    ]
    assert critical_path(spans) == pytest.approx({"recovery": 4.0})


def run_attribution(mode):
    chains = build_benchmark_chains("video-surveillance", 2)
    system = DMXSystem(chains, SystemConfig(mode=mode))
    result = system.run_latency(requests_per_app=2)
    spans = result.telemetry.spans
    out = {}
    for request_id in sorted({s.request_id for s in spans if s.request_id >= 0}):
        per = critical_path([s for s in spans if s.request_id == request_id])
        for key, seconds in per.items():
            out[key] = out.get(key, 0.0) + seconds
    return out


def test_dmx_takes_restructuring_off_the_critical_path():
    """The paper's headline, read off the span trees: with an in-fabric
    DRX (bump-in-the-wire) restructuring overlaps data movement and
    falls off the request critical path; with CPU restructuring
    (multi-accelerator baseline) it dominates it."""
    dmx = run_attribution(Mode.BUMP_IN_WIRE)
    cpu = run_attribution(Mode.MULTI_AXL)
    assert not on_critical_path(dmx, "restructuring")
    assert on_critical_path(cpu, "restructuring")
    cpu_share = cpu["restructuring"] / sum(cpu.values())
    dmx_share = dmx.get("restructuring", 0.0) / sum(dmx.values())
    assert cpu_share > 3 * dmx_share


def test_on_critical_path_threshold_and_empty():
    attribution = {"movement": 9.0, "kernel": 1.0}
    assert on_critical_path(attribution, "movement")
    assert on_critical_path(attribution, "kernel", threshold=0.10)
    assert not on_critical_path(attribution, "kernel", threshold=0.2)
    assert not on_critical_path({}, "kernel")
    assert not on_critical_path(attribution, "missing")


# -- rendering + CLI -----------------------------------------------------------


def write_run(tmp_path):
    result = build(Mode.MULTI_AXL).run_latency(requests_per_app=2)
    path = tmp_path / "run.jsonl"
    write_artifact(
        str(path), result.telemetry,
        meta={"mode": "multi-axl", "seed": 0},
    )
    return path


def test_waterfall_renders_tree(tmp_path):
    path = write_run(tmp_path)
    artifact = load_artifact(str(path))
    request_id = artifact.request_ids()[0]
    text = waterfall(artifact.spans_for_request(request_id), width=30)
    assert "█" in text
    assert "movement" in text
    assert waterfall([]) == "(no spans)"


def test_render_report_sections(tmp_path):
    artifact = load_artifact(str(write_run(tmp_path)))
    text = render_report(artifact, max_waterfalls=1)
    assert "phase breakdown" in text
    assert "critical-path attribution" in text
    assert "waterfall" in text
    assert "mode=multi-axl" in text
    assert "more requests" in text  # truncation notice


def test_cli_report_and_validate(tmp_path, capsys):
    path = write_run(tmp_path)
    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "phase breakdown" in out

    assert report_main([str(path), "--validate"]) == 0
    assert "valid" in capsys.readouterr().out


def test_cli_export_writes_trace(tmp_path):
    path = write_run(tmp_path)
    trace = tmp_path / "out.trace.json"
    assert report_main([str(path), "--export", str(trace)]) == 0
    assert trace.exists() and trace.stat().st_size > 0


def test_cli_validate_rejects_broken(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "meta", "schema": 1, "meta": {}}\n'
                    '{"kind": "mystery"}\n')
    assert report_main([str(path), "--validate"]) == 1
    assert "INVALID" in capsys.readouterr().err
