"""Trace sampling: determinism, protected traces, artifact filtering."""

import pytest

from repro.telemetry import (
    AlertEvent,
    RunArtifact,
    SamplingConfig,
    plan_sampling,
)
from repro.telemetry.spans import ROOT_PARENT, Instant, Span


def client(rid, start=0.0, end=1e-3, **attrs):
    return Span(
        span_id=rid, parent_id=ROOT_PARENT, request_id=rid,
        name=f"req{rid}", category="client", actor="a", phase="",
        start=start, end=end, attrs=dict(attrs),
    )


def source(spans=(), instants=()):
    return RunArtifact(
        schema=2, meta={}, spans=list(spans), instants=list(instants),
    )


def test_keep_fraction_one_keeps_everything():
    src = source([client(i) for i in range(20)])
    plan = plan_sampling(src, SamplingConfig(keep_fraction=1.0))
    assert plan.sampled_out == 0
    assert all(plan.keeps(i) for i in range(20))


def test_sampling_is_deterministic_and_books_balance():
    src = source([client(i) for i in range(200)])
    cfg = SamplingConfig(keep_fraction=0.25, seed=7)
    one = plan_sampling(src, cfg)
    two = plan_sampling(src, cfg)
    assert one.kept == two.kept
    assert 0 < len(one.kept) < 200
    assert one.sampled_out == 200 - len(one.kept)
    meta = one.to_meta()
    assert meta["kept"] + meta["sampled_out"] == 200
    # a different seed keeps a different set
    other = plan_sampling(src, SamplingConfig(keep_fraction=0.25, seed=8))
    assert other.kept != one.kept


def test_run_scoped_rows_always_survive():
    plan = plan_sampling(
        source([client(0)]), SamplingConfig(keep_fraction=0.5, seed=0)
    )
    assert plan.keeps(-1)


@pytest.mark.parametrize("attrs", [
    {"failed": True},
    {"rerouted_to": "drx1"},
    {"forced_cpu": True},
    {"breaker_open": True},
])
def test_control_plane_touched_traces_are_protected(attrs):
    # keep_fraction so small the hash keeps nothing; only protection
    # can retain the trace.
    src = source(
        [client(i) for i in range(50)] + [client(99, **attrs)]
    )
    plan = plan_sampling(src, SamplingConfig(keep_fraction=1e-6, seed=0))
    assert plan.keeps(99)
    assert plan.protected >= 1


def test_recovery_spans_and_fault_instants_protect():
    recovery = Span(
        span_id=500, parent_id=ROOT_PARENT, request_id=41, name="retry",
        category="recovery", actor="drx0", phase="recovery",
        start=0.0, end=1e-3,
    )
    faulted = Instant(time=0.0, name="dma_fault", category="fault",
                      actor="dma", request_id=42)
    src = source([client(i) for i in range(50)] + [recovery], [faulted])
    plan = plan_sampling(src, SamplingConfig(keep_fraction=1e-6, seed=0))
    assert plan.keeps(41)
    assert plan.keeps(42)


def test_alert_overlapping_traces_are_protected():
    fire = AlertEvent(
        time=30e-3, tenant="a", state="fire", window=2, fast_burn=3.0,
        slow_burn=1.5, span_s=20e-3,
    )
    inside = client(7, start=15e-3, end=25e-3)
    outside = client(8, start=100e-3, end=101e-3)
    src = source([client(i) for i in range(50)] + [inside, outside])
    plan = plan_sampling(
        src, SamplingConfig(keep_fraction=1e-6, seed=0), alerts=[fire]
    )
    assert plan.keeps(7)
    assert not plan.keeps(8)


def test_config_validation():
    with pytest.raises(ValueError):
        SamplingConfig(keep_fraction=0.0)
    with pytest.raises(ValueError):
        SamplingConfig(keep_fraction=1.5)
