"""Differential diagnosis: ranked regressions, symptom separation."""

import json

from repro.telemetry import RunArtifact, diff_runs, render_diff
from repro.telemetry.spans import ROOT_PARENT, Span


def run_with(restructure_s, queue_s=1e-3, n_requests=4):
    """Synthetic run: each request queues then restructures on drx0."""
    spans = []
    sid = 0
    for rid in range(n_requests):
        t0 = rid * 20e-3
        sid += 1
        root = sid
        spans.append(Span(
            root, ROOT_PARENT, rid, "req:a", "client", "a", "",
            t0, t0 + queue_s + restructure_s, {"tenant": "a"},
        ))
        sid += 1
        spans.append(Span(
            sid, root, rid, "admit", "queue", "a", "queue",
            t0, t0 + queue_s,
        ))
        sid += 1
        spans.append(Span(
            sid, root, rid, "drx", "restructuring", "drx0",
            "restructuring", t0 + queue_s, t0 + queue_s + restructure_s,
        ))
    return RunArtifact(schema=2, meta={"seed": 0}, spans=spans)


def test_injected_site_regression_ranks_first():
    a = run_with(restructure_s=2e-3)
    b = run_with(restructure_s=5e-3, queue_s=2e-3)  # cause + symptom
    report = diff_runs(a, b)
    assert report["verdict"]["top_regression"] == "restructuring@drx0"
    assert report["verdict"]["delta_per_request_s"] > 0
    top = report["regressions"][0]
    assert top["key"] == "restructuring@drx0"
    assert top["delta_per_request_s"] > 0
    # the queue growth is reported as a symptom, never a ranked cause
    assert all(
        row["phase"] not in ("queue", "idle")
        for row in report["regressions"]
    )
    assert any(row["phase"] == "queue" for row in report["symptoms"])


def test_per_request_normalization_survives_count_mismatch():
    # Same per-request behavior at different request counts: no verdict.
    a = run_with(restructure_s=2e-3, n_requests=4)
    b = run_with(restructure_s=2e-3, n_requests=8)
    report = diff_runs(a, b)
    assert report["verdict"]["top_regression"] == ""
    for row in report["regressions"]:
        assert abs(row["delta_per_request_s"]) < 1e-12


def test_self_diff_is_clean_and_json_able():
    a = run_with(restructure_s=2e-3)
    report = diff_runs(a, a, a_path="x.jsonl", b_path="x.jsonl")
    assert report["verdict"]["top_regression"] == ""
    assert report["a"]["requests"] == report["b"]["requests"] == 4
    json.dumps(report, sort_keys=True)  # must be serializable as-is


def test_percentile_curves_move_with_the_regression():
    a = run_with(restructure_s=2e-3)
    b = run_with(restructure_s=5e-3)
    report = diff_runs(a, b)
    points = report["percentiles"]["a"]
    assert all(pt["delta_s"] > 0 for pt in points)
    assert [pt["q"] for pt in points] == [0.50, 0.90, 0.95, 0.99]


def test_render_diff_text_sections():
    a = run_with(restructure_s=2e-3)
    b = run_with(restructure_s=5e-3)
    text = render_diff(diff_runs(a, b))
    assert "verdict: restructuring@drx0 regressed" in text
    assert "ranked regressions" in text
    assert "symptoms" in text
    assert "phase totals" in text
    assert "latency percentile curves" in text
