"""Run artifacts: round-trip, validation, byte determinism, export."""

import json

from repro.core import DMXSystem, Mode, SystemConfig
from repro.serve import (
    FrontendConfig,
    ServingFrontend,
    TenantSpec,
    make_arrivals,
)
from repro.telemetry import (
    SCHEMA_VERSION,
    chrome_trace,
    load_artifact,
    validate_artifact,
    write_artifact,
    write_chrome_trace,
)
from repro.workloads import build_benchmark_chains


def serve_once(seed, mode=Mode.BUMP_IN_WIRE, n_requests=6):
    chains = build_benchmark_chains("sound-detection", 2)
    system = DMXSystem(chains, SystemConfig(mode=mode))
    tenants = [
        TenantSpec(
            name=chain.name,
            arrivals=make_arrivals("poisson", 150.0),
            n_requests=n_requests,
        )
        for chain in chains
    ]
    frontend = ServingFrontend(
        system, tenants, FrontendConfig(slo_s=50e-3), seed=seed
    )
    return frontend.run()


def write_run(tmp_path, seed, name):
    result = serve_once(seed)
    path = tmp_path / name
    write_artifact(str(path), result.telemetry, meta={"seed": seed})
    return path, result


def test_artifact_round_trip(tmp_path):
    path, result = write_run(tmp_path, seed=3, name="run.jsonl")
    artifact = load_artifact(str(path))
    assert artifact.schema == SCHEMA_VERSION
    assert artifact.meta == {"seed": 3}
    assert len(artifact.spans) == len(result.telemetry.spans)
    assert artifact.request_ids() == sorted(
        {r.request_id for r in result.records}
    )
    # Metrics survive the round trip.
    tenant = result.records[0].app
    assert artifact.counter_value("arrivals", tenant=tenant) >= 1
    assert artifact.gauge_samples("inflight")  # sampler ran


def test_artifact_validates_clean(tmp_path):
    path, _ = write_run(tmp_path, seed=1, name="run.jsonl")
    assert validate_artifact(str(path)) == []


def test_same_seed_byte_identical_artifact(tmp_path):
    path_a, _ = write_run(tmp_path, seed=11, name="a.jsonl")
    path_b, _ = write_run(tmp_path, seed=11, name="b.jsonl")
    assert path_a.read_bytes() == path_b.read_bytes()


def test_different_seed_differs(tmp_path):
    path_a, _ = write_run(tmp_path, seed=11, name="a.jsonl")
    path_c, _ = write_run(tmp_path, seed=12, name="c.jsonl")
    assert path_a.read_bytes() != path_c.read_bytes()


def test_chrome_trace_export_is_deterministic_and_loadable(tmp_path):
    result_a = serve_once(seed=5)
    result_b = serve_once(seed=5)
    trace_a = tmp_path / "a.trace.json"
    trace_b = tmp_path / "b.trace.json"
    write_chrome_trace(str(trace_a), result_a.telemetry)
    write_chrome_trace(str(trace_b), result_b.telemetry)
    assert trace_a.read_bytes() == trace_b.read_bytes()

    trace = json.loads(trace_a.read_text())
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in events}
    assert "X" in phases and "M" in phases
    # Every complete event sits on a named track.
    named = {e["tid"] for e in events if e["ph"] == "M"}
    assert all(e["tid"] in named for e in events if e["ph"] == "X")
    # Timestamps are microseconds, non-negative durations.
    assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")


def test_chrome_trace_from_loaded_artifact_matches_live(tmp_path):
    path, result = write_run(tmp_path, seed=7, name="run.jsonl")
    live = chrome_trace(result.telemetry)["traceEvents"]
    loaded = chrome_trace(load_artifact(str(path)))["traceEvents"]
    assert live == loaded


def test_validate_flags_structural_problems(tmp_path):
    path = tmp_path / "broken.jsonl"
    lines = [
        json.dumps({"kind": "meta", "schema": SCHEMA_VERSION, "meta": {}}),
        json.dumps({
            "kind": "span", "id": 1, "parent": 99, "req": 0, "name": "x",
            "cat": "dma", "actor": "a", "phase": "", "start": 2.0,
            "end": 1.0, "attrs": {},
        }),
        json.dumps({"kind": "gauge", "name": "g", "labels": {},
                    "samples": [[2.0, 1.0], [1.0, 1.0]]}),
        json.dumps({"kind": "histogram", "name": "h", "labels": {},
                    "bounds": [1.0], "counts": [1], "sum": 0.5, "count": 1}),
        json.dumps({"kind": "mystery"}),
    ]
    path.write_text("\n".join(lines) + "\n")
    problems = validate_artifact(str(path))
    text = "\n".join(problems)
    assert "ends before start" in text
    assert "parent 99" in text
    assert "unordered" in text
    assert "length mismatch" in text
    assert "unknown kind" in text


def test_validate_rejects_wrong_schema(tmp_path):
    path = tmp_path / "old.jsonl"
    path.write_text(
        json.dumps({"kind": "meta", "schema": 0, "meta": {}}) + "\n"
    )
    assert any("schema" in p for p in validate_artifact(str(path)))
