"""Windowed rollups: window edges, gauge carry, scopes, determinism."""

import json

import pytest

from repro.telemetry import RollupConfig, RunArtifact, compute_rollups
from repro.telemetry.rollup import RollupWindow, _carry_window
from repro.telemetry.spans import ROOT_PARENT, Instant, Span

W = 10e-3


def client(span_id, tenant, start, end, failed=False, request_id=None):
    attrs = {"tenant": tenant}
    if failed:
        attrs["failed"] = True
    return Span(
        span_id=span_id, parent_id=ROOT_PARENT,
        request_id=span_id if request_id is None else request_id,
        name=f"req:{tenant}", category="client", actor=tenant,
        phase="", start=start, end=end, attrs=attrs,
    )


def site_span(span_id, actor, phase, start, end, request_id=0):
    return Span(
        span_id=span_id, parent_id=ROOT_PARENT, request_id=request_id,
        name=phase, category=phase, actor=actor, phase=phase,
        start=start, end=end,
    )


def artifact(spans=(), instants=(), gauges=None, meta=None):
    return RunArtifact(
        schema=2, meta=dict(meta or {}), spans=list(spans),
        instants=list(instants), gauges=dict(gauges or {}),
    )


def test_windows_key_on_completion_time():
    art = artifact([
        client(1, "a", start=1e-3, end=4e-3),       # window 0
        client(2, "a", start=2e-3, end=12e-3),      # window 1 (by end)
    ])
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    windows = rollups.for_key("tenant", "a")
    assert [x.stats["completed"] for x in windows] == [1, 1]
    assert windows[0].start == 0.0 and windows[0].end == W


def test_empty_windows_are_emitted_with_zeros():
    # One completion in window 0, one in window 3: windows 1-2 must
    # still exist (a controller reading the series needs the zeros).
    art = artifact([
        client(1, "a", 0.0, 2e-3),
        client(2, "a", 30e-3, 32e-3),
    ])
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    windows = rollups.for_key("tenant", "a")
    assert len(windows) == 4
    for empty in windows[1:3]:
        assert empty.stats["completed"] == 0
        assert empty.stats["goodput_rps"] == 0.0
        assert "mean_s" not in empty.stats  # no members: no latency stats
        assert "p99_s" not in empty.stats


def test_single_sample_window_percentiles_degrade_to_the_sample():
    art = artifact([client(1, "a", 0.0, 3e-3)])
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    (window,) = rollups.for_key("tenant", "a")
    assert window.stats["p50_s"] == pytest.approx(3e-3)
    assert window.stats["p95_s"] == pytest.approx(3e-3)
    assert window.stats["p99_s"] == pytest.approx(3e-3)
    assert window.stats["mean_s"] == pytest.approx(3e-3)
    assert window.stats["max_s"] == pytest.approx(3e-3)


def test_violations_and_goodput_respect_slo():
    art = artifact([
        client(1, "a", 0.0, 2e-3),                  # inside SLO
        client(2, "a", 0.0, 9e-3),                  # violates 5ms SLO
        client(3, "a", 1e-3, 6e-3, failed=True),    # failed: not a violation
    ])
    rollups = compute_rollups(art, RollupConfig(window_s=W), slo_s=5e-3)
    (window,) = rollups.for_key("tenant", "a")
    assert window.stats["completed"] == 3
    assert window.stats["failed"] == 1
    assert window.stats["violations"] == 1
    # goodput counts only non-failed, non-violating completions
    assert window.stats["goodput_rps"] == pytest.approx(1 / W)


def test_slo_defaults_from_artifact_meta():
    art = artifact([client(1, "a", 0.0, 9e-3)], meta={"slo_s": 5e-3})
    rollups = compute_rollups(art)
    assert rollups.slo_s == 5e-3
    (window,) = rollups.for_key("tenant", "a")
    assert window.stats["violations"] == 1


def test_shed_instants_count_per_window():
    art = artifact(
        [client(1, "a", 0.0, 1e-3)],
        instants=[
            Instant(time=2e-3, name="shed", category="admission", actor="a"),
            Instant(time=3e-3, name="brownout_shed", category="admission",
                    actor="a"),
            Instant(time=4e-3, name="other", category="admission", actor="a"),
        ],
    )
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    (window,) = rollups.for_key("tenant", "a")
    assert window.stats["shed"] == 2


def test_gauge_carry_window_lvcf():
    samples = [(2e-3, 4.0), (6e-3, 8.0)]
    mean, peak = _carry_window(samples, 0e-3, 10e-3)
    # no value before 2ms: first sample backfills; 4.0 until 6ms, then 8.0
    assert peak == 8.0
    assert mean == pytest.approx((4.0 * 6e-3 + 8.0 * 4e-3) / 10e-3)
    # carried forward into a later window with no samples of its own
    mean2, peak2 = _carry_window(samples, 10e-3, 20e-3)
    assert (mean2, peak2) == (8.0, 8.0)
    # nothing at or before the window: stat omitted, not faked as zero
    assert _carry_window([(15e-3, 1.0)], 0.0, 10e-3) is None


def test_carry_windows_matches_per_window_reference():
    # the streaming cursor variant must produce the exact floats of the
    # per-window reference scan, window for window
    from repro.telemetry.rollup import _carry_windows

    samples = [
        (0.5e-3, 3.0), (2e-3, 4.0), (6e-3, 8.0), (13e-3, 1.0),
        (13.5e-3, 5.0), (31e-3, 2.0),
    ]
    streamed = _carry_windows(samples, W, 5)
    for i, got in enumerate(streamed):
        assert got == _carry_window(samples, i * W, (i + 1) * W)
    # a gauge starting mid-run: leading windows omitted, not zeroed
    late = _carry_windows([(25e-3, 7.0)], W, 4)
    assert late[0] is None and late[1] is None
    assert late[2] == _carry_window([(25e-3, 7.0)], 2 * W, 3 * W)
    assert late[3] == _carry_window([(25e-3, 7.0)], 3 * W, 4 * W)
    assert _carry_windows([], W, 3) == [None, None, None]


def test_queue_depth_from_tenant_gauge():
    art = artifact(
        [client(1, "a", 0.0, 1e-3)],
        gauges={("queue_depth", (("tenant", "a"),)): [(0.0, 2.0), (5e-3, 6.0)]},
    )
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    (window,) = rollups.for_key("tenant", "a")
    assert window.stats["queue_depth_max"] == 6.0
    assert window.stats["queue_depth_mean"] == pytest.approx(4.0)


def test_site_busy_time_splits_across_windows():
    art = artifact([
        site_span(1, "drx0", "restructuring", 8e-3, 14e-3),
    ])
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    windows = rollups.for_key("site", "drx0")
    assert windows[0].stats["busy_s"] == pytest.approx(2e-3)
    assert windows[1].stats["busy_s"] == pytest.approx(4e-3)
    assert windows[0].stats["utilization"] == pytest.approx(0.2)
    # the leg lands in the window of its end
    assert windows[0].stats["legs"] == 0
    assert windows[1].stats["legs"] == 1


def test_breaker_state_carries_forward():
    art = artifact(
        [site_span(1, "drx0", "restructuring", 0.0, 1e-3)],
        instants=[
            Instant(time=12e-3, name="breaker_open", category="breaker",
                    actor="drx0", attrs={"state": "open", "from": "closed"}),
            Instant(time=25e-3, name="breaker_half_open", category="breaker",
                    actor="drx0",
                    attrs={"state": "half_open", "from": "open"}),
        ],
    )
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    states = [
        x.stats["breaker_state"] for x in rollups.for_key("site", "drx0")
    ]
    assert states == ["closed", "open", "half_open"]


def test_health_score_gauge_lands_on_site():
    art = artifact(
        [site_span(1, "drx0", "restructuring", 0.0, 1e-3)],
        gauges={("health_score", (("target", "drx0"),)): [(2e-3, 0.5)]},
    )
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    (window,) = rollups.for_key("site", "drx0")
    assert window.stats["health"] == 0.5


def test_backend_scope_from_stage_spans_and_planner_gauge():
    stage = Span(
        span_id=1, parent_id=ROOT_PARENT, request_id=0, name="leg",
        category="stage", actor="", phase="", start=0.0, end=4e-3,
        attrs={"backend": "drx"},
    )
    art = artifact(
        [stage],
        gauges={
            ("planner_queue_depth", (("backend", "drx"),)): [(0.0, 3.0)],
        },
    )
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    (window,) = rollups.for_key("backend", "drx")
    assert window.stats["legs"] == 1
    assert window.stats["busy_s"] == pytest.approx(4e-3)
    assert window.stats["queue_depth_mean"] == 3.0


def test_series_skips_windows_missing_the_stat():
    art = artifact([
        client(1, "a", 0.0, 2e-3),
        client(2, "a", 30e-3, 32e-3),
    ])
    rollups = compute_rollups(art, RollupConfig(window_s=W))
    series = rollups.series("tenant", "a", "p99_s")
    assert [t for t, _ in series] == [0.0, 30e-3]
    # completed exists in every window, zeros included
    assert len(rollups.series("tenant", "a", "completed")) == 4


def test_rollup_rows_round_trip_and_are_deterministic():
    art = artifact(
        [client(1, "a", 0.0, 2e-3), site_span(2, "drx0", "kernel", 0.0, 1e-3)],
        meta={"slo_s": 5e-3},
    )
    one = compute_rollups(art)
    two = compute_rollups(art)
    dump = lambda r: json.dumps(  # noqa: E731
        list(r.to_rows()), sort_keys=True
    )
    assert dump(one) == dump(two)
    for row in one.to_rows():
        again = RollupWindow.from_row(row)
        assert again.to_row() == row


def test_config_validation():
    with pytest.raises(ValueError):
        RollupConfig(window_s=0.0)
    with pytest.raises(ValueError):
        RollupConfig(quantiles=(1.5,))
    with pytest.raises(ValueError):
        RollupConfig(quantiles=())
