"""Metrics registry: counters, gauges, histograms, time weighting."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    time_weighted_mean,
)


def test_time_weighted_mean_lvcf():
    # 10 holds for 1s, 0 for the remaining 9s.
    points = [(0.0, 10.0), (1.0, 0.0)]
    assert time_weighted_mean(points, end=10.0) == pytest.approx(1.0)


def test_time_weighted_mean_ignores_sampling_density():
    sparse = [(0.0, 4.0), (2.0, 2.0)]
    dense = [(0.0, 4.0), (0.5, 4.0), (1.0, 4.0), (1.5, 4.0), (2.0, 2.0)]
    assert time_weighted_mean(sparse, end=4.0) == pytest.approx(
        time_weighted_mean(dense, end=4.0)
    )


def test_time_weighted_mean_degenerate_cases():
    assert time_weighted_mean([]) == 0.0
    # Zero span: plain average.
    assert time_weighted_mean([(1.0, 3.0)]) == 3.0
    assert time_weighted_mean([(1.0, 2.0), (1.0, 4.0)]) == 3.0


def test_counter_monotonic():
    counter = Counter("retries", ())
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_ordering_and_aggregates():
    gauge = Gauge("depth", ())
    gauge.sample(0.0, 4.0)
    gauge.sample(1.0, 2.0)
    assert gauge.last() == 2.0
    assert gauge.max() == 4.0
    assert gauge.time_weighted_mean(end=4.0) == pytest.approx(2.5)
    with pytest.raises(ValueError, match="backwards"):
        gauge.sample(0.5, 1.0)


def test_gauge_empty_raises():
    gauge = Gauge("depth", ())
    with pytest.raises(ValueError):
        gauge.last()
    with pytest.raises(ValueError):
        gauge.max()


def test_histogram_buckets_and_overflow():
    hist = Histogram("lat", (), bounds=(1.0, 2.0))
    for x in (0.5, 1.5, 1.5, 9.0):
        hist.observe(x)
    assert hist.counts == [1, 2, 1]
    assert hist.count == 4
    assert hist.mean() == pytest.approx((0.5 + 1.5 + 1.5 + 9.0) / 4)
    with pytest.raises(ValueError, match="ascending"):
        Histogram("bad", (), bounds=(2.0, 1.0))


def test_registry_get_or_create_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("arrivals", tenant="app0")
    b = registry.counter("arrivals", tenant="app0")
    c = registry.counter("arrivals", tenant="app1")
    assert a is b and a is not c
    assert registry.gauge("depth") is registry.gauge("depth")
    assert registry.histogram("lat") is registry.histogram("lat")


def test_registry_iteration_is_insertion_ordered():
    registry = MetricsRegistry()
    registry.counter("z")
    registry.counter("a")
    assert [c.name for c in registry.counters()] == ["z", "a"]
