"""Tests for the telemetry layer."""
