"""Span model: hierarchy, abandonment, finalization."""

import pytest

from repro.sim import Simulator
from repro.telemetry import ROOT_PARENT, SpanContext, Telemetry
from repro.telemetry.spans import SpanTracker


def make_tracker():
    sim = Simulator()
    return sim, SpanTracker(sim)


def test_begin_end_records_times_and_ids():
    sim, tracker = make_tracker()
    root = tracker.begin("req", "request", actor="app0", request_id=3)
    sim.run(until=1.5)
    done = tracker.end(root, failed=False)
    assert done.span_id == 0
    assert done.parent_id == ROOT_PARENT
    assert done.request_id == 3
    assert (done.start, done.end) == (0.0, 1.5)
    assert done.duration == 1.5
    assert done.attrs == {"failed": False}
    assert tracker.open_count == 0


def test_parenting_accepts_span_and_id():
    sim, tracker = make_tracker()
    root = tracker.begin("root", "request")
    by_span = tracker.begin("a", "stage", parent=root)
    by_id = tracker.begin("b", "stage", parent=root.span_id)
    assert by_span.parent_id == root.span_id
    assert by_id.parent_id == root.span_id


def test_end_twice_rejected():
    sim, tracker = make_tracker()
    span = tracker.begin("x", "stage")
    tracker.end(span)
    with pytest.raises(ValueError, match="not open"):
        tracker.end(span)


def test_add_post_hoc_span_and_time_checks():
    sim, tracker = make_tracker()
    span = tracker.add("queue", "queue", start=1.0, end=2.0, request_id=5)
    assert span.duration == 1.0
    with pytest.raises(ValueError):
        tracker.add("bad", "queue", start=2.0, end=1.0)


def test_instant_defaults_to_sim_now():
    sim, tracker = make_tracker()
    sim.run(until=2.0)
    event = tracker.instant("retry", "fault", actor="dma", site="dma")
    assert event.time == 2.0
    assert event.attrs == {"site": "dma"}
    explicit = tracker.instant("late", "fault", time=9.0)
    assert explicit.time == 9.0


def test_mark_abandoned_closes_and_flags_subtree():
    sim, tracker = make_tracker()
    attempt = tracker.begin("attempt", "attempt")
    child = tracker.begin("dma", "dma", parent=attempt)
    grandchild = tracker.begin("leg", "dma", parent=child)
    tracker.end(grandchild)  # finished descendants are flagged too
    marked = tracker.mark_abandoned(attempt)
    assert marked == 3
    assert tracker.open_count == 0
    assert all(s.abandoned for s in tracker.spans)


def test_finalize_truncates_stragglers():
    sim, tracker = make_tracker()
    tracker.begin("open", "stage")
    sim.run(until=1.0)
    assert tracker.finalize() == 1
    assert tracker.spans[-1].attrs["truncated"] is True
    assert tracker.finalize() == 0


def test_disabled_telemetry_is_a_noop():
    sim = Simulator()
    telemetry = Telemetry(sim, enabled=False)
    span = telemetry.begin("x", "stage")
    assert telemetry.end(span) is None
    assert telemetry.add("q", "queue", start=0.0, end=1.0) is None
    assert telemetry.instant("e", "fault") is None
    assert telemetry.mark_abandoned(span) == 0
    assert telemetry.finalize() == 0
    assert telemetry.spans == [] and telemetry.instants == []


def test_span_context_threads_parent_and_request():
    sim = Simulator()
    telemetry = Telemetry(sim)
    root = telemetry.begin("root", "request", request_id=7)
    ctx = telemetry.context(root, request_id=7)
    assert isinstance(ctx, SpanContext)
    child = ctx.begin("dma", "dma")
    assert child.parent_id == root.span_id
    assert child.request_id == 7
    grand = ctx.child(child).begin("leg", "dma")
    assert grand.parent_id == child.span_id


def test_wrap_closes_span_on_interrupt():
    from repro.sim import Interrupt

    sim = Simulator()
    telemetry = Telemetry(sim)

    def body():
        yield sim.timeout(10.0)

    proc = sim.spawn(telemetry.wrap(body(), "work", "dma"))

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt("deadline")

    sim.spawn(killer())
    sim.run()
    assert telemetry.tracker.open_count == 0
    (span,) = telemetry.spans
    assert span.abandoned and span.end == 1.0
