"""System-level planner behaviour: routing decisions on real runs,
edge cases (nothing eligible, breakers, faults), and the telemetry /
reporting contracts the planner adds."""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.backends import (
    BACKEND_CPU,
    BACKEND_DRX,
    BACKEND_DSA,
    BACKEND_XDMA,
    PlannerConfig,
)
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.faults import FaultPlan
from repro.faults.injector import FaultPolicy
from repro.profiles import WorkProfile
from repro.resilience import ResilienceConfig

KB = 1024
MB = 1024 * 1024

_SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def _affine(nbytes):
    return WorkProfile(
        name="affine", bytes_in=nbytes, bytes_out=nbytes,
        elements=max(1, nbytes // 4), ops_per_element=2.0,
        branch_fraction=0.02, gather_fraction=0.0,
    )


def _gathery(nbytes):
    return WorkProfile(
        name="gathery", bytes_in=2 * nbytes, bytes_out=nbytes,
        elements=max(1, nbytes // 4), ops_per_element=20.0,
        gather_fraction=0.3,
    )


def _chain(payload=64 * KB, profile=None):
    profile = profile if profile is not None else _affine(payload)
    return AppChain(
        name="app",
        stages=[
            KernelStage("k1", _SPEC, cpu_time_s=6e-4, accel_time_s=1e-4,
                        output_bytes=payload),
            MotionStage("m", profile, input_bytes=payload,
                        output_bytes=payload, cpu_threads=4),
            KernelStage("k2", _SPEC, cpu_time_s=6e-4, accel_time_s=1e-4,
                        output_bytes=max(1, payload // 4)),
        ],
    )


def _system(chain=None, *, candidates=None, faults=None, resilience=None):
    backends = PlannerConfig(
        **({"candidates": candidates} if candidates else {})
    )
    return DMXSystem(
        [chain if chain is not None else _chain()],
        SystemConfig(mode=Mode.BUMP_IN_WIRE),
        faults=faults,
        resilience=resilience,
        backends=backends,
    )


def _trip(system, target):
    """Open ``target``'s breaker before the run (4 failures > threshold
    at the default min_observations)."""
    for _ in range(4):
        system.control.record(target, False, 1.0)
    assert not system.control.admit(target).allow


# -- decision recording --------------------------------------------------


def test_decisions_land_on_the_request_record():
    result = _system().run_latency(requests_per_app=1)
    (record,) = result.records
    assert record.backend == [BACKEND_XDMA]
    assert "<" in record.planner_reason[0]  # the full ranking string
    assert record.planner_reason[0].startswith("xdma:")


def test_recovery_summary_gains_backends_key_only_when_armed():
    armed = _system().run_latency(requests_per_app=1).recovery_summary()
    assert set(armed) == {
        "requests", "retries", "fallbacks", "rerouted", "rescued",
        "failures", "backends",
    }
    assert armed["backends"][BACKEND_XDMA]["executed"] == 1
    plain = DMXSystem(
        [_chain()], SystemConfig(mode=Mode.BUMP_IN_WIRE)
    ).run_latency(requests_per_app=1).recovery_summary()
    assert set(plain) == {
        "requests", "retries", "fallbacks", "rerouted", "rescued",
        "failures",
    }


def test_contention_flips_the_choice_mid_run():
    """Pipelined requests pile onto the cheapest backend until its queue
    depth prices it above the runner-up — the live-contention flip."""
    result = _system(_chain(4 * MB)).run_throughput(requests_per_app=16)
    used = {kind for r in result.records for kind in r.backend}
    assert BACKEND_XDMA in used  # unloaded winner
    assert BACKEND_DRX in used  # absorbs the overflow once xdma queues
    assert len(used) >= 2, f"no contention flip: {used}"


def test_batch_members_agree_on_one_backend():
    system = _system(_chain(1 * MB))
    records = []

    def driver():
        batch = yield from system.submit_batch(0, 4)
        records.extend(batch)

    system.sim.spawn(driver())
    system.sim.run()
    assert len(records) == 4
    assert len({tuple(r.backend) for r in records}) == 1
    assert len({tuple(r.planner_reason) for r in records}) == 1
    # The batch planned its motion leg exactly once.
    planned = sum(s["planned"] for s in system.backend_stats.values())
    assert planned == 1


# -- nothing eligible ----------------------------------------------------


def test_no_eligible_backend_degrades_to_cpu():
    """XDMA shape-ineligible + DSA breaker open: the planner runs out of
    candidates and the CPU fallback catches the leg, with the breaker
    skip recorded as a reroute."""
    chain = _chain(64 * KB, _gathery(64 * KB))  # never XDMA-expressible
    system = _system(
        chain, candidates=(BACKEND_XDMA, BACKEND_DSA),
        resilience=ResilienceConfig(),
    )
    _trip(system, "dsa")
    result = system.run_latency(requests_per_app=1)
    (record,) = result.records
    assert record.backend == [BACKEND_CPU]
    reason = record.planner_reason[0]
    assert reason.startswith("no-eligible-backend")
    assert "xdma:ineligible" in reason
    assert "dsa:breaker-open" in reason
    assert record.rerouted  # steered around the open breaker
    assert system.backend_stats[BACKEND_DSA]["rerouted"] == 1
    assert system.backend_stats[BACKEND_CPU]["executed"] == 1


def test_open_breaker_reroutes_to_next_cheapest():
    """With the cheapest backend's breaker open the planner steers to
    the runner-up before any deadline budget is burned."""
    system = _system(_chain(1 * MB), resilience=ResilienceConfig())
    _trip(system, "xdma")
    result = system.run_latency(requests_per_app=1)
    (record,) = result.records
    assert record.backend != [BACKEND_XDMA]
    assert "xdma:breaker-open" in record.planner_reason[0]
    assert record.rerouted
    assert system.backend_stats[BACKEND_XDMA]["rerouted"] == 1
    assert system.control.summary()["reroutes"] == 1


# -- faults at the new sites ---------------------------------------------


@pytest.mark.parametrize(
    "kind,profile_of,site_policy",
    [
        (BACKEND_DSA, _gathery, "dsa"),
        (BACKEND_XDMA, _affine, "xdma"),
    ],
)
def test_backend_fault_falls_back_to_cpu(kind, profile_of, site_policy):
    payload = 64 * KB
    plan = FaultPlan(**{site_policy: FaultPolicy(fail_p=1.0)})
    system = _system(
        _chain(payload, profile_of(payload)), candidates=(kind,),
        faults=plan,
    )
    result = system.run_latency(requests_per_app=1)
    (record,) = result.records
    assert record.backend == [kind]  # the plan picked the engine...
    assert record.fell_back  # ...the fault pushed it to CPU
    assert not record.failed
    assert record.phases["recovery"] > 0
    assert system.backend_stats[kind]["fallen_back"] == 1
    assert system.backend_stats[BACKEND_CPU]["executed"] == 1


def test_backend_hang_trips_the_deadline():
    plan = FaultPlan(
        dsa=FaultPolicy(hang_p=1.0), drx_deadline_s=5e-3,
    )
    system = _system(
        _chain(64 * KB, _gathery(64 * KB)), candidates=(BACKEND_DSA,),
        faults=plan,
    )
    result = system.run_latency(requests_per_app=1)
    (record,) = result.records
    assert record.fell_back
    assert record.phases["recovery"] >= 5e-3
    assert system.backend_stats[BACKEND_DSA]["fallen_back"] == 1


def test_fault_free_plan_composition_is_inert():
    """A FaultPlan with the new sites left at zero probability must not
    perturb the planner's fault-free decisions."""
    plain = _system(_chain(1 * MB)).run_latency(requests_per_app=2)
    faulted = _system(
        _chain(1 * MB), faults=FaultPlan()
    ).run_latency(requests_per_app=2)
    assert [r.backend for r in plain.records] == [
        r.backend for r in faulted.records
    ]
    assert [r.end - r.start for r in plain.records] == pytest.approx(
        [r.end - r.start for r in faulted.records]
    )


# -- telemetry attribution ----------------------------------------------


def test_backend_attribution_reconciles_with_phase_accounting(tmp_path):
    from repro.telemetry import write_artifact
    from repro.telemetry.artifact import load_artifact
    from repro.telemetry.report import backend_attribution

    system = _system(_chain(1 * MB))
    result = system.run_throughput(requests_per_app=6)
    path = str(tmp_path / "run.json")
    write_artifact(path, system.telemetry, {"kind": "test"})
    attribution = backend_attribution(load_artifact(path))
    assert attribution  # planner-routed legs present
    assert set(attribution) <= set(system.backend_stats)
    # Restructuring accrues only on planned motion legs, so the
    # per-backend buckets must reconcile with the request-phase ledger.
    attributed = sum(
        bucket.get("restructuring", 0.0) for bucket in attribution.values()
    )
    booked = sum(r.phases["restructuring"] for r in result.records)
    assert attributed == pytest.approx(booked, abs=1e-9)


def test_report_cli_renders_backend_section(tmp_path, capsys):
    from repro.telemetry import write_artifact
    from repro.telemetry.__main__ import main as report_main

    system = _system(_chain(1 * MB))
    system.run_latency(requests_per_app=2)
    path = str(tmp_path / "run.json")
    write_artifact(path, system.telemetry, {"kind": "test"})
    assert report_main([path]) == 0
    out = capsys.readouterr().out
    assert "backend attribution" in out
    assert "xdma" in out


# -- the planner-aware FORCE_CPU tier ------------------------------------------


def _submit(system, force_cpu=False, clients=1):
    records = []

    def client():
        records.append((yield from system.submit(0, force_cpu=force_cpu)))

    for _ in range(clients):
        system.sim.spawn(client())
    system.sim.run()
    return records


def test_force_cpu_keeps_accelerators_cheaper_than_cpu():
    """The brownout FORCE_CPU tier no longer pessimizes legs whose
    accelerator path is *cheaper* than host restructuring: the ceiling
    admits any surviving backend pricing at or below the CPU estimate."""
    (record,) = _submit(_system(), force_cpu=True)
    assert record.backend == [BACKEND_XDMA]
    assert "cpu-ceiling:" in record.planner_reason[0]
    assert not record.fell_back


def test_force_cpu_tier_is_deterministic():
    a = [r.backend for r in _submit(_system(), force_cpu=True, clients=4)]
    b = [r.backend for r in _submit(_system(), force_cpu=True, clients=4)]
    assert a == b


def test_force_cpu_prunes_backends_pricier_than_cpu():
    """Deep queues inflate accelerator estimates past the CPU ceiling:
    those candidates are dropped *before* breaker checks, and the
    decision records why."""
    system = DMXSystem(
        [_chain(4 * MB)],
        SystemConfig(mode=Mode.BUMP_IN_WIRE),
        backends=PlannerConfig(queue_weight=40.0),
    )
    records = _submit(system, force_cpu=True, clients=24)
    assert len(records) == 24
    pruned = [
        r for r in records if "over-cpu-ceiling" in r.planner_reason[0]
    ]
    assert pruned, "contention must price some backend above CPU"
    # Every decision carries the ceiling it was constrained by.
    assert all("cpu-ceiling:" in r.planner_reason[0] for r in records)


def test_planner_excludes_decommissioned_domains():
    """A detected-dead failure domain is pruned from the candidate set
    before pricing — decommission means no new legs, full stop."""
    from repro.faults import CrashPlan, DomainCrash

    system = DMXSystem(
        [_chain()],
        SystemConfig(mode=Mode.BUMP_IN_WIRE),
        backends=PlannerConfig(candidates=("drx", "cpu")),
        resilience=ResilienceConfig(),
        domains=CrashPlan(
            crashes=(DomainCrash(target="a0k0.drx", at_s=0.0),)
        ),
    )
    first, second = _submit(system, clients=2)
    # The corpse is detected via the first leg's failure; the second
    # request's plan never offers the dead unit again.
    assert system.domains.is_down("a0k0.drx")
    assert not first.failed and not second.failed
    reasons = [r.planner_reason[0] for r in (first, second)]
    assert any("drx:decommissioned" in reason for reason in reasons)
