"""Unit tests for the backend timing models and their DES devices."""

import pytest

from repro.backends import (
    BACKEND_KINDS,
    CostEstimate,
    DSAConfig,
    DSADevice,
    PlannerConfig,
    XDMAConfig,
    XDMADevice,
)
from repro.core.chain import MotionStage
from repro.profiles import WorkProfile
from repro.sim import Simulator

KB = 1024
MB = 1024 * 1024


def _profile(**kw):
    base = dict(
        name="p", bytes_in=40 * KB, bytes_out=40 * KB, elements=10 * KB,
        ops_per_element=2.0, branch_fraction=0.02, gather_fraction=0.0,
    )
    base.update(kw)
    return WorkProfile(**base)


# -- DSA -----------------------------------------------------------------


def test_dsa_submit_and_poll_costs_scale_per_member():
    cfg = DSAConfig()
    assert cfg.submit_time(1) == pytest.approx(
        cfg.portal_submit_s + cfg.descriptor_s
    )
    # Batch members ride the batch descriptor at the cheap rate.
    assert cfg.submit_time(4) == pytest.approx(
        cfg.portal_submit_s + cfg.descriptor_s + 3 * cfg.batch_descriptor_s
    )
    assert cfg.poll_time(3) == pytest.approx(
        cfg.completion_poll_s + 2 * cfg.poll_reap_s
    )


def test_dsa_job_time_is_a_roofline():
    cfg = DSAConfig()
    moved = _profile()  # byte-dominated
    assert cfg.job_time(moved) == pytest.approx(
        moved.total_bytes / cfg.move_bandwidth
    )
    compute = _profile(ops_per_element=64.0)  # op-dominated
    assert cfg.job_time(compute) == pytest.approx(
        compute.total_ops / cfg.transform_ops_per_s
    )


def test_dsa_config_validation():
    with pytest.raises(ValueError):
        DSAConfig(engines=0)
    with pytest.raises(ValueError):
        DSAConfig(move_bandwidth=0)
    with pytest.raises(ValueError):
        DSAConfig(portal_submit_s=-1e-9)


def test_dsa_device_serializes_on_the_shared_work_queue():
    sim = Simulator()
    cfg = DSAConfig(engines=1)
    dev = DSADevice(sim, cfg)
    profile = _profile()
    done = []

    def job():
        yield from dev.process(profile)
        done.append(sim.now)

    sim.spawn(job())
    sim.spawn(job())
    sim.run()
    job_s = cfg.job_time(profile)
    assert done[0] == pytest.approx(job_s)
    assert done[1] == pytest.approx(2 * job_s)  # queued behind the first
    assert dev.jobs_completed == 2
    assert dev.busy_seconds == pytest.approx(2 * job_s)


# -- XDMA ----------------------------------------------------------------


def test_xdma_programming_does_not_amortize():
    cfg = XDMAConfig()
    assert cfg.program_time(1) == pytest.approx(cfg.program_s)
    # Every member carries its own transform spec — linear, not O(1).
    assert cfg.program_time(4) == pytest.approx(
        cfg.program_s + 3 * cfg.member_program_s
    )


def test_xdma_descriptor_expressibility_caps():
    cfg = XDMAConfig()

    def stage(profile, payload=1 * MB):
        return MotionStage("m", profile, input_bytes=payload,
                           output_bytes=payload)

    assert cfg.descriptor_expressible(stage(_profile()))
    assert not cfg.descriptor_expressible(
        stage(_profile(gather_fraction=cfg.max_gather_fraction + 0.01))
    )
    assert not cfg.descriptor_expressible(
        stage(_profile(branch_fraction=cfg.max_branch_fraction + 0.01))
    )
    assert not cfg.descriptor_expressible(
        stage(_profile(ops_per_element=cfg.max_ops_per_element + 1))
    )
    assert not cfg.descriptor_expressible(
        stage(_profile(), payload=cfg.max_payload_bytes + 1)
    )


def test_xdma_config_validation():
    with pytest.raises(ValueError):
        XDMAConfig(channels=0)
    with pytest.raises(ValueError):
        XDMAConfig(transform_bandwidth=0)
    with pytest.raises(ValueError):
        XDMAConfig(max_payload_bytes=0)


def test_xdma_device_overlaps_across_channels():
    sim = Simulator()
    cfg = XDMAConfig(channels=2)
    dev = XDMADevice(sim, cfg)
    nbytes = 1 * MB
    done = []

    def job():
        yield from dev.transform(nbytes)
        done.append(sim.now)

    for _ in range(2):
        sim.spawn(job())
    sim.run()
    t = cfg.transform_time(nbytes)
    # Two channels: both finish together, no queueing.
    assert done == [pytest.approx(t), pytest.approx(t)]
    assert dev.jobs_completed == 2


# -- shared shapes -------------------------------------------------------


def test_cost_estimate_total_is_service_plus_queue():
    est = CostEstimate(service_s=2e-6, queue_s=3e-6, depth=4, energy_j=1e-6)
    assert est.total_s == pytest.approx(5e-6)


def test_planner_config_validation():
    with pytest.raises(ValueError):
        PlannerConfig(candidates=())
    with pytest.raises(ValueError):
        PlannerConfig(candidates=("gpu",))
    with pytest.raises(ValueError):
        PlannerConfig(candidates=("drx", "drx"))
    with pytest.raises(ValueError):
        PlannerConfig(queue_weight=-1.0)
    assert PlannerConfig().candidates == BACKEND_KINDS
