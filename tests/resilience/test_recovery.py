"""Permanent-failure domains: crash → detect → decommission → drain →
rescue → revive → re-admit.

The contract of :mod:`repro.resilience.recovery`:

* a scheduled crash is *detected* (consecutive observed failures promote
  the target's breaker to DEAD) and the domain decommissioned within the
  detection budget;
* in-flight legs on the dead domain are *drained* via the engine's
  interrupt machinery and *rescued exactly once* on the surviving CPU
  backend — no request is lost, none is double-counted;
* a request past the plan's rescue deadline fails with the typed
  :class:`~repro.faults.RescueAbandoned` instead of being resubmitted;
* a *revival* re-admits the domain through half-open probing;
* everything is deterministic, and a crash-free plan arms nothing.
"""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.faults import CrashPlan, DomainCrash
from repro.profiles import WorkProfile
from repro.resilience import (
    BreakerState,
    RecoveryScenarioConfig,
    ResilienceConfig,
    run_recovery_scenario,
)
from repro.telemetry import load_artifact

KB = 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

#: With 4 STANDALONE tenants (2 apps per card) the kill target serves
#: tenants app0/app1; drx.s1 (app2/app3) survives.
TARGET = "drx.s0"


def make_chain(i=0):
    profile = WorkProfile(
        name="motion", bytes_in=16 * KB, bytes_out=8 * KB,
        elements=16384, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=30e-6, accel_time_s=2e-6,
                        output_bytes=16 * KB),
            MotionStage("m", profile, input_bytes=16 * KB,
                        output_bytes=8 * KB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=24e-6, accel_time_s=2e-6,
                        output_bytes=4 * KB),
        ],
    )


def chains():
    return [make_chain(i) for i in range(4)]


def scenario(crashes, tmp_path=None, **overrides):
    kwargs = dict(
        offered_rps=40e3,
        crashes=crashes,
        n_tenants=4,
        requests_per_tenant=12,
        chain_factory=chains,
        slo_s=5e-3,
        seed=0,
    )
    kwargs.update(overrides)
    if tmp_path is not None:
        kwargs.setdefault("artifact_path", str(tmp_path / "run.jsonl"))
    return RecoveryScenarioConfig(**kwargs)


KILL = (DomainCrash(target=TARGET, at_s=300e-6),)
KILL_REVIVE = (DomainCrash(target=TARGET, at_s=300e-6, revive_at_s=2e-3),)


# -- detection & decommission --------------------------------------------------


def test_crash_is_detected_and_decommissioned():
    result = run_recovery_scenario(scenario(KILL))
    assert result.domains["crashed"] == [TARGET]
    assert result.domains["decommissioned"] == [TARGET]
    detect = result.detect_latency_s[TARGET]
    assert detect is not None and detect >= 0
    # detect_after_failures=1 and legs in flight at the kill: the first
    # drained leg detects the corpse at the crash instant itself.
    assert detect == 0.0


def test_detection_escalates_over_consecutive_failures():
    result = run_recovery_scenario(
        scenario(KILL, detect_after_failures=3)
    )
    assert result.domains["decommissioned"] == [TARGET]
    # Three observations were needed before decommission.
    d = result.domains
    assert d["drained"] + d["failed_fast"] >= 3


def test_dead_breaker_blocks_traffic_until_revival(tmp_path):
    result = run_recovery_scenario(scenario(KILL, tmp_path))
    artifact = load_artifact(result.artifact_path)
    assert artifact.counter_value(
        "breaker_transitions", target=TARGET, to="dead"
    ) == 1
    assert artifact.counter_value("domain_decommissions") == 1
    # No span starts on the dead card after decommission (also enforced
    # as invariant C4 on every artifact this suite writes).
    dead_at = next(
        i.time for i in artifact.instants if i.name == "domain_dead"
    )
    late = [
        s for s in artifact.spans
        if s.actor == TARGET and s.start > dead_at + 1e-9
    ]
    assert late == []


# -- drain & rescue ------------------------------------------------------------


def test_inflight_requests_are_rescued_exactly_once():
    result = run_recovery_scenario(scenario(KILL))
    rescued = [r for r in result.records if r.rescued]
    assert rescued, "the kill must catch requests in flight"
    assert len(rescued) == result.domains["rescued"]
    assert result.domains["drained"] == result.domains["rescued"]
    # Rescue means completion: nothing drained may be lost or failed.
    assert all(not r.failed for r in rescued)
    assert all(not r.failed for r in result.records)
    # Every tenant's admitted requests all completed (conservation).
    assert len(result.records) == 4 * 12


def test_rescue_lands_on_surviving_backend_with_burned_latency(tmp_path):
    result = run_recovery_scenario(scenario(KILL, tmp_path))
    artifact = load_artifact(result.artifact_path)
    rescues = [i for i in artifact.instants if i.name == "domain_rescue"]
    assert rescues and all(i.attrs["to"] == "cpu" for i in rescues)
    # The drained attempt's burned time is re-billed to recovery spans,
    # never silently dropped.
    recovery = [
        s for s in artifact.spans
        if s.phase == "recovery" and s.attrs.get("cause") == "DomainCrashed"
    ]
    burned = [i.attrs["burned_s"] for i in rescues if i.attrs["burned_s"]]
    assert len(recovery) == len(burned)


def test_rescue_deadline_fails_requests_with_typed_reason():
    result = run_recovery_scenario(
        scenario(KILL, rescue_deadline_s=0.0, verify=False)
    )
    d = result.domains
    assert d["rescues_abandoned"] > 0
    assert d["rescued"] == 0
    failed = [r for r in result.records if r.failed]
    assert len(failed) == d["rescues_abandoned"]
    assert all(not r.rescued for r in result.records)


def test_rescue_past_deadline_still_counts_when_budget_allows():
    generous = run_recovery_scenario(
        scenario(KILL, rescue_deadline_s=1.0)
    )
    assert generous.domains["rescues_abandoned"] == 0
    assert generous.domains["rescued"] > 0


# -- revival -------------------------------------------------------------------


def test_revival_readmits_through_half_open_probing(tmp_path):
    result = run_recovery_scenario(
        scenario(KILL_REVIVE, tmp_path, requests_per_tenant=40)
    )
    assert result.domains["revived"] == [TARGET]
    artifact = load_artifact(result.artifact_path)
    assert artifact.counter_value(
        "breaker_transitions", target=TARGET, to="dead"
    ) == 1
    # DEAD -> OPEN at revival, then the normal half-open probe path.
    assert artifact.counter_value(
        "breaker_transitions", target=TARGET, to="half_open"
    ) >= 1
    revived_at = next(
        i.time for i in artifact.instants if i.name == "domain_revived"
    )
    back = [
        s for s in artifact.spans
        if s.actor == TARGET and s.start > revived_at
    ]
    assert back, "revived card must serve traffic again"


def test_unrevived_domain_stays_out():
    result = run_recovery_scenario(scenario(KILL, requests_per_tenant=30))
    assert result.domains["revived"] == []
    assert all(not r.failed for r in result.records)


# -- determinism & the unarmed identity ---------------------------------------


def _digest(result):
    return [
        (r.request_id, r.app, r.start, r.end, r.failed, r.rescued,
         tuple(r.backend or ()))
        for r in result.records
    ]


def test_recovery_runs_are_deterministic():
    a = run_recovery_scenario(scenario(KILL_REVIVE))
    b = run_recovery_scenario(scenario(KILL_REVIVE))
    assert _digest(a) == _digest(b)
    assert a.domains == b.domains


def test_empty_crash_plan_arms_nothing():
    system = DMXSystem(
        chains(), SystemConfig(mode=Mode.STANDALONE),
        domains=CrashPlan(),
    )
    assert system.domains is None


def test_goodput_window_queries():
    result = run_recovery_scenario(scenario(KILL))
    with pytest.raises(ValueError):
        result.goodput_between(1.0, 1.0)
    total = result.goodput_between(0.0, 10.0) * 10.0
    assert total == len([r for r in result.records if not r.failed])


# -- scenario config validation ------------------------------------------------


def test_scenario_config_validates():
    with pytest.raises(ValueError):
        RecoveryScenarioConfig(offered_rps=0.0, crashes=KILL)
    with pytest.raises(ValueError):
        RecoveryScenarioConfig(offered_rps=1.0, crashes=KILL, n_tenants=0)
    with pytest.raises(ValueError):
        DomainCrash(target=TARGET, at_s=1.0, revive_at_s=0.5)
    with pytest.raises(ValueError):
        CrashPlan(crashes=(
            DomainCrash(target=TARGET, at_s=1.0),
            DomainCrash(target=TARGET, at_s=2.0),
        ))


def test_domain_manager_summary_shape():
    result = run_recovery_scenario(scenario(KILL))
    assert set(result.domains) == {
        "crashed", "decommissioned", "revived", "detect_latency_s",
        "drained", "failed_fast", "rescued", "rescues_abandoned",
    }


def test_breaker_dead_state_is_terminal_until_revive():
    """Unit-level DEAD semantics: no cooldown half-opens a dead breaker."""
    system = DMXSystem(
        chains(), SystemConfig(mode=Mode.STANDALONE),
        resilience=ResilienceConfig(),
    )
    control = system.control
    control.mark_dead(TARGET)
    breaker = control.breaker(TARGET)
    assert breaker.state is BreakerState.DEAD
    assert not control.admit(TARGET).allow
    assert control.dead_targets() == [TARGET]
    system.sim.schedule(10.0, lambda: None)
    system.sim.run()
    assert not control.admit(TARGET).allow  # time alone never revives
    control.revive(TARGET, cooldown_s=0.0)
    assert breaker.state is not BreakerState.DEAD
