"""Circuit-breaker state machine, pinned transition by transition.

The breaker only needs a ``.now`` attribute from its clock, so these
tests drive it with a plain mutable stub and no simulator at all. With
``jitter=0.0`` (the default) every cooldown is exact arithmetic, so
open windows are asserted to the float.
"""

import random

import pytest

from repro.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
)


class Clock:
    def __init__(self, now=0.0):
        self.now = now


CFG = BreakerConfig(
    failure_threshold=0.5,
    min_observations=4,
    cooldown_s=10e-3,
    cooldown_multiplier=2.0,
    cooldown_cap_s=80e-3,
    probe_successes=2,
)


def make_breaker(config=CFG, clock=None):
    clock = clock or Clock()
    monitor = HealthMonitor(config=HealthConfig(window=8))
    return CircuitBreaker(clock, "drx.s0", monitor, config), clock


def test_starts_closed_and_allows():
    breaker, _ = make_breaker()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow() == (True, False)


def test_failures_below_min_observations_cannot_trip():
    breaker, _ = make_breaker()
    for _ in range(CFG.min_observations - 1):
        breaker.record(ok=False)
    # 3 failures out of 3 is a 100% failure fraction, but the evidence
    # floor has not been met yet.
    assert breaker.state is BreakerState.CLOSED


def test_trips_exactly_at_threshold_with_min_observations():
    breaker, clock = make_breaker()
    clock.now = 1.0
    breaker.record(ok=True)
    breaker.record(ok=True)
    breaker.record(ok=False)
    assert breaker.state is BreakerState.CLOSED  # 1/3 failed, below 0.5
    breaker.record(ok=False)
    # 2/4 failed == threshold, with min_observations met: trip.
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1
    assert breaker.open_until == pytest.approx(1.0 + CFG.cooldown_s)
    assert breaker.transitions == [(1.0, BreakerState.OPEN)]


def test_successes_cannot_trip_even_with_stale_failures():
    # Only a *failure* triggers threshold evaluation; a success observed
    # while the window still holds old failures must not open the breaker.
    breaker, _ = make_breaker()
    breaker.record(ok=False)
    breaker.record(ok=False)
    breaker.record(ok=False)
    breaker.record(ok=True)  # 3/4 failed, but this outcome was a success
    assert breaker.state is BreakerState.CLOSED


def tripped_breaker():
    breaker, clock = make_breaker()
    for ok in (False, False, False, False):
        breaker.record(ok=ok)
    assert breaker.state is BreakerState.OPEN
    return breaker, clock


def test_open_blocks_until_cooldown_then_half_opens_one_probe():
    breaker, clock = tripped_breaker()
    assert breaker.allow() == (False, False)
    clock.now = CFG.cooldown_s / 2
    assert breaker.allow() == (False, False)
    clock.now = CFG.cooldown_s
    decision = breaker.allow()
    assert decision == (True, True)  # the probe
    assert breaker.state is BreakerState.HALF_OPEN
    # Only one probe in flight: everyone else keeps getting rerouted.
    assert breaker.allow() == (False, False)


def test_half_open_closes_after_consecutive_probe_successes():
    breaker, clock = tripped_breaker()
    clock.now = CFG.cooldown_s
    assert breaker.allow().probe
    breaker.record(ok=True, probe=True)
    assert breaker.state is BreakerState.HALF_OPEN  # 1 of 2 needed
    assert breaker.allow().probe
    breaker.record(ok=True, probe=True)
    assert breaker.state is BreakerState.CLOSED
    # Closing turned the page: the monitor window was reset, so the four
    # old failures cannot contribute to a re-trip.
    assert breaker.monitor.observations("drx.s0") == 0


def test_half_open_probe_failure_reopens_with_doubled_cooldown():
    breaker, clock = tripped_breaker()
    clock.now = CFG.cooldown_s
    assert breaker.allow().probe
    breaker.record(ok=False, probe=True)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    # Second consecutive open: cooldown_s * multiplier^1.
    assert breaker.open_until == pytest.approx(
        clock.now + CFG.cooldown_s * CFG.cooldown_multiplier
    )


def test_cooldown_backoff_caps():
    breaker, clock = tripped_breaker()
    # Fail the probe repeatedly; each re-trip doubles the cooldown until
    # the cap pins it.
    expected = [20e-3, 40e-3, 80e-3, 80e-3, 80e-3]
    for cooldown in expected:
        clock.now = breaker.open_until
        assert breaker.allow().probe
        breaker.record(ok=False, probe=True)
        assert breaker.open_until == pytest.approx(clock.now + cooldown)


def test_straggler_outcome_is_not_mistaken_for_the_probe():
    breaker, clock = tripped_breaker()
    clock.now = CFG.cooldown_s
    assert breaker.allow().probe
    # A straggler dispatched before the trip completes now, successfully.
    # It was not the probe (probe=False), so it must not close the
    # breaker or consume the probe slot.
    breaker.record(ok=True, probe=False)
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.allow() == (False, False)  # probe still in flight
    breaker.record(ok=True, probe=True)
    assert breaker.state is BreakerState.HALF_OPEN  # only 1 probe counted
    assert breaker.allow().probe  # straggler freed nothing; this is #2
    breaker.record(ok=True, probe=True)
    assert breaker.state is BreakerState.CLOSED


def test_no_flapping_after_close_needs_fresh_evidence():
    breaker, clock = tripped_breaker()
    clock.now = CFG.cooldown_s
    for _ in range(CFG.probe_successes):
        assert breaker.allow().probe
        breaker.record(ok=True, probe=True)
    assert breaker.state is BreakerState.CLOSED
    # One failure right after closing: without the window reset this
    # would see 4 old failures + 1 new and flap straight back open.
    breaker.record(ok=False)
    assert breaker.state is BreakerState.CLOSED
    # It takes a full fresh body of evidence to re-open.
    breaker.record(ok=False)
    breaker.record(ok=False)
    assert breaker.state is BreakerState.CLOSED  # 3 < min_observations
    breaker.record(ok=False)
    assert breaker.state is BreakerState.OPEN
    # The close reset the backoff: first cooldown again, not 4x.
    assert breaker.open_until == pytest.approx(clock.now + CFG.cooldown_s)


def test_force_open_and_cooldown_override():
    breaker, clock = make_breaker()
    breaker.force_open(cooldown_s=5.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.open_until == 5.0
    # Already open: force_open only extends the window.
    clock.now = 1.0
    breaker.force_open(cooldown_s=9.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.open_until == 10.0
    assert breaker.trips == 1


def test_jittered_cooldown_is_deterministic_given_seed():
    def open_until(seed):
        config = BreakerConfig(
            cooldown_s=10e-3, cooldown_cap_s=80e-3, jitter=0.5
        )
        clock = Clock()
        monitor = HealthMonitor()
        breaker = CircuitBreaker(
            clock, "drx.s0", monitor, config, rng=random.Random(seed)
        )
        for _ in range(4):
            breaker.record(ok=False)
        return breaker.open_until

    assert open_until(1) == open_until(1)
    assert open_until(1) != open_until(2)
    base = BreakerConfig(cooldown_s=10e-3, cooldown_cap_s=80e-3).cooldown_s
    assert base <= open_until(1) <= base * 1.5


def test_transition_callback_fires_in_order():
    seen = []
    clock = Clock()
    monitor = HealthMonitor()
    breaker = CircuitBreaker(
        clock, "drx.s0", monitor, CFG,
        on_transition=lambda b, old, new: seen.append((old, new)),
    )
    for _ in range(4):
        breaker.record(ok=False)
    clock.now = breaker.open_until
    breaker.allow()
    breaker.record(ok=True, probe=True)
    breaker.allow()
    breaker.record(ok=True, probe=True)
    assert seen == [
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    ]


def test_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0.0)
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=1.5)
    with pytest.raises(ValueError):
        BreakerConfig(min_observations=0)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown_s=0.0)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown_multiplier=0.5)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown_s=50e-3, cooldown_cap_s=10e-3)
    with pytest.raises(ValueError):
        BreakerConfig(probe_successes=0)
    with pytest.raises(ValueError):
        BreakerConfig(jitter=1.0)
