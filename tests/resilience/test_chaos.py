"""Chaos sweep: plan scaling, cliff queries, and the end-to-end grid."""

import json

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import AppChain, KernelStage, MotionStage
from repro.faults import FaultPlan, FaultPolicy
from repro.profiles import WorkProfile
from repro.resilience import (
    BreakerConfig,
    ChaosPoint,
    ChaosSweepConfig,
    ChaosSweepResult,
    DEFAULT_CHAOS_PLAN,
    ResilienceConfig,
    run_chaos_sweep,
    scale_plan,
)
from repro.telemetry import validate_artifact

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)


def make_chains():
    def chain(i):
        profile = WorkProfile(
            name="motion", bytes_in=8 * MB, bytes_out=2 * MB,
            elements=MB, ops_per_element=20.0, gather_fraction=0.3,
        )
        return AppChain(
            name=f"app{i}",
            stages=[
                KernelStage("k1", SPEC, cpu_time_s=2e-3, accel_time_s=5e-4,
                            output_bytes=4 * MB),
                MotionStage("m", profile, input_bytes=4 * MB,
                            output_bytes=2 * MB, cpu_threads=3),
                KernelStage("k2", SPEC, cpu_time_s=1e-3, accel_time_s=4e-4,
                            output_bytes=MB),
            ],
        )

    return [chain(i) for i in range(2)]


TINY = dict(
    offered_loads_rps=(40.0, 120.0),
    fault_intensities=(1.0,),
    requests_per_tenant=10,
    chain_factory=make_chains,
    resilience=ResilienceConfig(
        seed=1,
        breaker=BreakerConfig(cooldown_s=100.0, cooldown_cap_s=100.0),
    ),
    slo_s=60e-3,
    seed=3,
)


# -- scale_plan ----------------------------------------------------------------


def test_scale_plan_scales_every_site():
    plan = FaultPlan(
        seed=9,
        dma=FaultPolicy(fail_p=0.1),
        drx=FaultPolicy(hang_p=0.2),
        kernel=FaultPolicy(delay_p=0.3),
        drx_deadline_s=30e-3,
    )
    half = scale_plan(plan, 0.5)
    assert half.dma.fail_p == pytest.approx(0.05)
    assert half.drx.hang_p == pytest.approx(0.1)
    assert half.kernel.delay_p == pytest.approx(0.15)
    # Determinism knobs and budgets ride along untouched.
    assert half.seed == plan.seed
    assert half.drx_deadline_s == plan.drx_deadline_s


def test_scale_plan_zero_intensity_injects_nothing():
    quiet = scale_plan(DEFAULT_CHAOS_PLAN, 0.0)
    assert quiet.drx.hang_p == 0.0
    assert quiet.dma.fail_p == 0.0


def test_scale_plan_normalizes_overflowing_probabilities():
    plan = FaultPlan(seed=0, drx=FaultPolicy(fail_p=0.4, hang_p=0.4))
    hot = scale_plan(plan, 2.0)
    assert hot.drx.fail_p + hot.drx.hang_p == pytest.approx(1.0)
    assert hot.drx.fail_p == pytest.approx(0.5)


def test_scale_plan_rejects_negative_intensity():
    with pytest.raises(ValueError):
        scale_plan(DEFAULT_CHAOS_PLAN, -0.1)


# -- cliff queries on synthetic points -----------------------------------------


def synthetic(goodputs, control_plane=False, floor=0.7):
    result = ChaosSweepResult(slo_s=50e-3, seed=0, goodput_floor=floor)
    for load, goodput in goodputs:
        result.points.append(ChaosPoint(
            control_plane=control_plane, intensity=1.0, offered_rps=load,
            goodput_rps=goodput, p50_s=0.0, p99_s=0.0, completed=0,
            failed=0, violations=0, shed=0, retries=0, fallbacks=0,
            rerouted=0, elapsed_s=1.0,
        ))
    return result


def test_cliff_is_last_load_before_first_miss():
    result = synthetic([(10, 10), (20, 18), (40, 20), (80, 70)])
    # 40 rps only yields 20 (< 0.7*40): the cliff is at 20, and the
    # recovering point at 80 does not un-ring the bell.
    assert result.goodput_cliff_rps(1.0, False) == 20
    # A looser floor (0.5): 40 rps yielding 20 just sustains, and the
    # whole curve holds — the cliff is the last grid point.
    assert result.goodput_cliff_rps(1.0, False, floor=0.5) == 80


def test_cliff_zero_when_lightest_load_misses():
    result = synthetic([(10, 1), (20, 1)])
    assert result.goodput_cliff_rps(1.0, False) == 0.0


def test_cliff_shift_subtracts_arms():
    result = synthetic([(10, 10), (20, 5)], control_plane=False)
    for point in synthetic([(10, 10), (20, 19)], control_plane=True).points:
        result.points.append(point)
    assert result.cliff_shift_rps(1.0) == 10.0


# -- config validation ---------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        ChaosSweepConfig(offered_loads_rps=())
    with pytest.raises(ValueError):
        ChaosSweepConfig(offered_loads_rps=(20.0, 10.0))  # not ascending
    with pytest.raises(ValueError):
        ChaosSweepConfig(offered_loads_rps=(10.0,), fault_intensities=())
    with pytest.raises(ValueError):
        ChaosSweepConfig(offered_loads_rps=(10.0,),
                         fault_intensities=(-1.0,))
    with pytest.raises(ValueError):
        ChaosSweepConfig(offered_loads_rps=(10.0,), control_plane=())
    with pytest.raises(ValueError):
        ChaosSweepConfig(offered_loads_rps=(10.0,), goodput_floor=0.0)


# -- the end-to-end grid -------------------------------------------------------


def test_tiny_grid_runs_both_arms():
    result = run_chaos_sweep(ChaosSweepConfig(**TINY))
    assert len(result.points) == 4  # 2 loads x 1 intensity x 2 arms
    assert result.intensities() == [1.0]
    baseline = result.cell(1.0, False)
    resilient = result.cell(1.0, True)
    assert [p.offered_rps for p in baseline] == [40.0, 120.0]
    assert [p.offered_rps for p in resilient] == [40.0, 120.0]
    # Same faults, but only the resilient arm reroutes.
    assert all(p.rerouted == 0 for p in baseline)
    assert any(p.rerouted > 0 for p in resilient)
    assert all(p.fallbacks > 0 for p in baseline)
    # Goodput curves expose the same data the cliff query scans.
    assert result.goodput_curve(1.0, True) == [
        (p.offered_rps, p.goodput_rps) for p in resilient
    ]


def test_sweep_is_byte_deterministic():
    first = run_chaos_sweep(ChaosSweepConfig(**TINY))
    second = run_chaos_sweep(ChaosSweepConfig(**TINY))
    assert first.to_json() == second.to_json()
    json.loads(first.to_json())  # well-formed


def test_artifacts_written_and_valid(tmp_path):
    config = ChaosSweepConfig(**TINY, artifact_dir=str(tmp_path))
    run_chaos_sweep(config)
    paths = sorted(p.name for p in tmp_path.iterdir())
    assert paths == [
        "baseline-i0-pt0.jsonl", "baseline-i0-pt1.jsonl",
        "resilient-i0-pt0.jsonl", "resilient-i0-pt1.jsonl",
    ]
    for path in tmp_path.iterdir():
        issues = validate_artifact(str(path))
        assert issues == []
        meta = json.loads(path.read_text().splitlines()[0])
        assert meta["meta"]["intensity"] == 1.0
