"""The conservation invariant checker: clean artifacts pass, seeded
accounting mutations fail loudly.

The checker is the accountability layer of the recovery work — a chaos
or recovery sweep whose artifact double-counts a rescued request, books
time onto a decommissioned domain, or loses an admitted request would
silently corrupt every result built on it. These tests prove the
checker (a) accepts everything the real pipeline produces and (b)
rejects each mutation class it exists to catch.
"""

import json

import pytest

from repro.faults import DomainCrash
from repro.resilience import (
    InvariantViolation,
    RecoveryScenarioConfig,
    run_recovery_scenario,
    verify_artifact_path,
)
from repro.telemetry.__main__ import main as telemetry_main

from .test_recovery import KILL, TARGET, chains, scenario


@pytest.fixture()
def artifact(tmp_path):
    path = str(tmp_path / "run.jsonl")
    run_recovery_scenario(scenario(KILL, artifact_path=path))
    return path


def _mutate(artifact, tmp_path, fn):
    rows = [json.loads(line) for line in open(artifact)]
    fn(rows)
    path = str(tmp_path / "mutated.jsonl")
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return path


# -- clean artifacts pass ------------------------------------------------------


def test_recovery_artifact_passes_all_checks(artifact):
    report = verify_artifact_path(artifact)
    assert report.ok
    assert report.problems == []
    # Every check class ran (the artifact has counters, spans, a
    # decommissioned domain, and rescued requests).
    assert set(report.checked) == {
        "C1-conservation", "C2-containment", "C3-phase-tiling",
        "C4-decommission", "C5-rescue",
    }
    assert report.checked["C5-rescue"] > 0
    assert "PASS" in report.render()
    assert report.raise_on_problems() is report


def test_artifact_without_domains_skips_c4(tmp_path):
    path = str(tmp_path / "plain.jsonl")
    cfg = RecoveryScenarioConfig(
        offered_rps=40e3,
        crashes=(DomainCrash(target=TARGET, at_s=1e9),),
        n_tenants=4, requests_per_tenant=4, chain_factory=chains,
        artifact_path=path, verify=False,
    )
    # Crash far past run end: scheduled but never fires before the
    # frontend drains, so no domain_dead instant lands in the artifact.
    run_recovery_scenario(cfg)
    report = verify_artifact_path(path)
    assert report.ok
    assert "C4-decommission" in report.skipped


# -- each mutation class is caught ---------------------------------------------


def test_double_counted_rescue_fails_c5(artifact, tmp_path):
    def unabandon(rows):
        span = next(
            r for r in rows
            if r["kind"] == "span" and r["cat"] == "request"
            and r["attrs"].get("rescued")
        )
        for r in rows:
            if r["kind"] == "span" and r["req"] == span["req"]:
                r["attrs"].pop("abandoned", None)

    mutated = _mutate(artifact, tmp_path, unabandon)
    report = verify_artifact_path(mutated)
    assert not report.ok
    assert any(p.startswith("C5:") for p in report.problems)
    with pytest.raises(InvariantViolation) as exc:
        report.raise_on_problems()
    assert "C5" in str(exc.value)


def test_lost_request_fails_c1(artifact, tmp_path):
    def bump(rows):
        row = next(
            r for r in rows
            if r["kind"] == "counter" and r["name"] == "admitted"
        )
        row["value"] += 1

    report = verify_artifact_path(_mutate(artifact, tmp_path, bump))
    assert any(p.startswith("C1:") for p in report.problems)


def test_span_on_dead_domain_fails_c4(artifact, tmp_path):
    def forge(rows):
        dead = next(
            r for r in rows
            if r["kind"] == "instant" and r["name"] == "domain_dead"
        )
        top = max(r["id"] for r in rows if r["kind"] == "span")
        rows.append({
            "kind": "span", "id": top + 1, "parent": -1, "req": -1,
            "name": "ghost", "cat": "stage", "actor": dead["actor"],
            "phase": "", "start": dead["time"] + 1e-3,
            "end": dead["time"] + 2e-3, "attrs": {},
        })

    report = verify_artifact_path(_mutate(artifact, tmp_path, forge))
    assert any(p.startswith("C4:") for p in report.problems)


def test_escaped_child_span_fails_c2(artifact, tmp_path):
    def stretch(rows):
        spans = [r for r in rows if r["kind"] == "span"]
        parents = {r["parent"] for r in spans}
        child = next(
            r for r in spans
            if r["parent"] != -1 and r["cat"] != "client"
            and r["id"] not in parents
        )
        child["end"] = child["end"] + 1.0

    report = verify_artifact_path(_mutate(artifact, tmp_path, stretch))
    assert any(p.startswith("C2:") for p in report.problems)


def test_unbalanced_phase_books_fail_c3(artifact, tmp_path):
    def shrink(rows):
        req = next(
            r for r in rows
            if r["kind"] == "span" and r["cat"] == "request"
            and not r["attrs"].get("batched")
            and not r["attrs"].get("failed")
        )
        kernel = next(
            r for r in rows
            if r["kind"] == "span" and r["parent"] == req["id"]
            and r["phase"]
        )
        kernel["end"] = kernel["start"] + (kernel["end"] - kernel["start"]) / 2

    report = verify_artifact_path(_mutate(artifact, tmp_path, shrink))
    assert any(
        p.startswith(("C3:", "C2:")) for p in report.problems
    )


# -- the CLI spelling ----------------------------------------------------------


def test_cli_verify_passes_clean_artifact(artifact, capsys):
    assert telemetry_main(["verify", artifact]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_cli_verify_fails_mutated_artifact(artifact, tmp_path, capsys):
    def bump(rows):
        row = next(
            r for r in rows
            if r["kind"] == "counter" and r["name"] == "admitted"
        )
        row["value"] += 1

    mutated = _mutate(artifact, tmp_path, bump)
    assert telemetry_main(["verify", artifact, mutated]) == 1
    out = capsys.readouterr().out
    assert "FAILED" in out
