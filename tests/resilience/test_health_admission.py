"""Unit coverage for the control plane's sensing and policing pieces:
health windows, token buckets, and the brownout ladder."""

import pytest

from repro.resilience import (
    BrownoutConfig,
    BrownoutController,
    BrownoutTier,
    HealthConfig,
    HealthMonitor,
    TokenBucket,
    TokenBucketConfig,
)
from repro.sim import Simulator
from repro.telemetry import Telemetry


# -- health monitor ------------------------------------------------------------


def test_unseen_target_is_healthy():
    monitor = HealthMonitor()
    assert monitor.health("drx.s0") == 1.0
    assert monitor.failure_fraction("drx.s0") == 0.0
    assert monitor.observations("drx.s0") == 0
    assert monitor.targets() == []


def test_health_is_windowed_success_fraction():
    monitor = HealthMonitor(config=HealthConfig(window=4))
    for ok in (True, True, False, False):
        monitor.record("drx.s0", ok)
    assert monitor.health("drx.s0") == 0.5
    # The window slides: two more failures evict the two successes.
    monitor.record("drx.s0", False)
    monitor.record("drx.s0", False)
    assert monitor.health("drx.s0") == 0.0
    assert monitor.observations("drx.s0") == 4  # saturates at window


def test_targets_are_independent_and_sorted():
    monitor = HealthMonitor()
    monitor.record("drx.s1", False)
    monitor.record("drx.s0", True)
    assert monitor.targets() == ["drx.s0", "drx.s1"]
    assert monitor.summary() == {"drx.s0": 1.0, "drx.s1": 0.0}


def test_reset_forgets_the_window():
    monitor = HealthMonitor()
    monitor.record("drx.s0", False)
    monitor.reset("drx.s0")
    assert monitor.health("drx.s0") == 1.0
    assert monitor.observations("drx.s0") == 0


def test_monitor_publishes_metrics_into_telemetry():
    sim = Simulator()
    telemetry = Telemetry(sim)
    monitor = HealthMonitor(telemetry)
    monitor.record("drx.s0", True, latency_s=2e-3)
    monitor.record("drx.s0", False)
    registry = telemetry.metrics
    ok = registry.counter("drx_outcomes", target="drx.s0", ok="true")
    bad = registry.counter("drx_outcomes", target="drx.s0", ok="false")
    assert ok.value == 1 and bad.value == 1
    # The gauge timeline ends at the current health score.
    gauge = registry.gauge("health_score", target="drx.s0")
    assert gauge.last() == 0.5
    hist = registry.histogram("drx_leg_latency", target="drx.s0")
    assert hist.count == 1 and hist.sum == pytest.approx(2e-3)


def test_disabled_telemetry_keeps_monitor_functional():
    sim = Simulator()
    telemetry = Telemetry(sim, enabled=False)
    monitor = HealthMonitor(telemetry)
    monitor.record("drx.s0", False)
    assert monitor.health("drx.s0") == 0.0


# -- token bucket --------------------------------------------------------------


def test_bucket_starts_full_and_debits():
    bucket = TokenBucket(TokenBucketConfig(rate_per_s=10.0, burst=3.0))
    assert bucket.available(0.0) == 3.0
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)  # burst exhausted


def test_bucket_refills_at_rate_and_caps_at_burst():
    bucket = TokenBucket(TokenBucketConfig(rate_per_s=10.0, burst=3.0))
    for _ in range(3):
        bucket.try_take(0.0)
    # 0.05s * 10/s = 0.5 tokens: not enough for a whole request.
    assert not bucket.try_take(0.05)
    assert bucket.try_take(0.1)  # 1.0 accrued (0.5 kept + 0.5 new)
    # A long idle period cannot bank more than the burst.
    assert bucket.available(100.0) == 3.0


def test_bucket_initial_fill_and_validation():
    bucket = TokenBucket(
        TokenBucketConfig(rate_per_s=1.0, burst=5.0, initial=0.0)
    )
    assert not bucket.try_take(0.0)
    assert bucket.try_take(1.0)
    with pytest.raises(ValueError):
        TokenBucketConfig(rate_per_s=0.0)
    with pytest.raises(ValueError):
        TokenBucketConfig(rate_per_s=1.0, burst=0.5)
    with pytest.raises(ValueError):
        TokenBucketConfig(rate_per_s=1.0, burst=2.0, initial=3.0)


# -- brownout ladder -----------------------------------------------------------


BROWNOUT = BrownoutConfig(
    window=8,
    min_samples=4,
    quantile=0.99,
    escalate_at=1.0,
    deescalate_at=0.7,
    min_dwell_s=10e-3,
)


def fill(controller, latency, n=8):
    for _ in range(n):
        controller.observe(latency)


def test_no_verdict_below_min_samples():
    controller = BrownoutController(slo_s=50e-3, config=BROWNOUT)
    fill(controller, 100e-3, n=3)
    assert controller.windowed_tail() is None
    assert controller.update(now=1.0) is None
    assert controller.tier is BrownoutTier.NORMAL


def test_escalates_one_tier_per_update_with_dwell():
    controller = BrownoutController(slo_s=50e-3, config=BROWNOUT)
    fill(controller, 100e-3)  # tail at 2x SLO
    assert controller.update(now=0.011) == (
        BrownoutTier.NORMAL, BrownoutTier.SHED_LOW,
    )
    # Still hot, but within the dwell window: no second step yet.
    assert controller.update(now=0.015) is None
    assert controller.update(now=0.022) == (
        BrownoutTier.SHED_LOW, BrownoutTier.COALESCE,
    )
    assert controller.update(now=0.033) == (
        BrownoutTier.COALESCE, BrownoutTier.FORCE_CPU,
    )
    # FORCE_CPU is the top: no further escalation.
    assert controller.update(now=0.044) is None
    assert [tier for _, tier in controller.history] == [
        BrownoutTier.SHED_LOW, BrownoutTier.COALESCE, BrownoutTier.FORCE_CPU,
    ]


def test_hysteresis_band_holds_tier():
    controller = BrownoutController(slo_s=50e-3, config=BROWNOUT)
    fill(controller, 100e-3)
    controller.update(now=0.011)
    assert controller.tier is BrownoutTier.SHED_LOW
    # Tail between deescalate (35ms) and escalate (50ms): hold.
    fill(controller, 40e-3)
    assert controller.update(now=0.1) is None
    assert controller.tier is BrownoutTier.SHED_LOW
    # Cool tail de-escalates one step.
    fill(controller, 10e-3)
    assert controller.update(now=0.2) == (
        BrownoutTier.SHED_LOW, BrownoutTier.NORMAL,
    )
    assert controller.update(now=0.3) is None  # floor


def test_max_tier_caps_the_ladder():
    config = BrownoutConfig(
        window=8, min_samples=4, min_dwell_s=0.0,
        max_tier=BrownoutTier.COALESCE,
    )
    controller = BrownoutController(slo_s=50e-3, config=config)
    fill(controller, 1.0)
    times = iter(range(1, 10))
    while controller.update(now=float(next(times))) is not None:
        pass
    assert controller.tier is BrownoutTier.COALESCE


def test_first_escalation_is_not_suppressed_by_the_initial_dwell():
    """Failing-first for the ``_last_change = 0.0`` bug: before any tier
    change there is nothing to dwell on, so a hot window escalates even
    at ``now < min_dwell_s``."""
    controller = BrownoutController(slo_s=50e-3, config=BROWNOUT)
    fill(controller, 100e-3)  # tail at 2x SLO
    assert controller.update(now=0.002) == (
        BrownoutTier.NORMAL, BrownoutTier.SHED_LOW,
    )
    # And the dwell *does* bind from that change onward.
    assert controller.update(now=0.004) is None


def test_set_tier_jumps_directly_and_honors_dwell():
    controller = BrownoutController(slo_s=50e-3, config=BROWNOUT)
    # A controller-picked tier may skip rungs (cheapest sufficient tier,
    # not one-step ladder walking), from t=0 on a fresh ladder.
    assert controller.set_tier(0.001, BrownoutTier.FORCE_CPU) == (
        BrownoutTier.NORMAL, BrownoutTier.FORCE_CPU,
    )
    # Within the dwell: no flapping, even controller-driven.
    assert controller.set_tier(0.005, BrownoutTier.NORMAL) is None
    assert controller.tier is BrownoutTier.FORCE_CPU
    # Past the dwell the override lands and history records both moves.
    assert controller.set_tier(0.012, BrownoutTier.NORMAL) == (
        BrownoutTier.FORCE_CPU, BrownoutTier.NORMAL,
    )
    assert [tier for _, tier in controller.history] == [
        BrownoutTier.FORCE_CPU, BrownoutTier.NORMAL,
    ]


def test_set_tier_respects_max_tier_and_no_ops_on_same_tier():
    config = BrownoutConfig(
        window=8, min_samples=4, min_dwell_s=0.0,
        max_tier=BrownoutTier.COALESCE,
    )
    controller = BrownoutController(slo_s=50e-3, config=config)
    assert controller.set_tier(0.0, BrownoutTier.FORCE_CPU) == (
        BrownoutTier.NORMAL, BrownoutTier.COALESCE,
    )
    assert controller.set_tier(1.0, BrownoutTier.COALESCE) is None


def test_brownout_config_validation():
    with pytest.raises(ValueError):
        BrownoutConfig(window=0)
    with pytest.raises(ValueError):
        BrownoutConfig(window=4, min_samples=5)
    with pytest.raises(ValueError):
        BrownoutConfig(quantile=1.0)
    with pytest.raises(ValueError):
        BrownoutConfig(escalate_at=1.0, deescalate_at=1.0)
    with pytest.raises(ValueError):
        BrownoutConfig(update_period_s=0.0)
    with pytest.raises(ValueError):
        BrownoutController(slo_s=0.0)
