"""Breakers wired into DMXSystem dispatch: reroute-before-deadline.

The contract under test: with the control plane armed, a sick DRX costs
the system a handful of deadline-burning failures (enough to trip its
breaker) and everything after is steered around it *without* waiting
out a timeout — to a sibling unit when the placement has one, else to
CPU restructuring. Unarmed, every single request pays the deadline.
"""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.faults import FaultPlan, FaultPolicy
from repro.profiles import WorkProfile
from repro.resilience import BreakerConfig, BreakerState, ResilienceConfig

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

#: Every DRX leg hangs; the watchdog fires after 20 ms.
ALL_HANG = FaultPlan(
    seed=42, drx=FaultPolicy(hang_p=1.0), drx_deadline_s=20e-3
)

#: Long cooldown so a tripped breaker stays open for the whole run
#: (probe behavior gets its own test with the default schedule).
HOLD_OPEN = ResilienceConfig(
    seed=1,
    breaker=BreakerConfig(cooldown_s=100.0, cooldown_cap_s=100.0),
)


def make_chain(i=0, in_mb=12, out_mb=6):
    profile = WorkProfile(
        name="motion", bytes_in=2 * in_mb * MB, bytes_out=out_mb * MB,
        elements=in_mb * MB // 4, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=5e-3, accel_time_s=1e-3,
                        output_bytes=in_mb * MB),
            MotionStage("m", profile, input_bytes=in_mb * MB,
                        output_bytes=out_mb * MB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=4e-3, accel_time_s=8e-4,
                        output_bytes=MB),
        ],
    )


def build(mode=Mode.STANDALONE, n_apps=2, faults=None, resilience=None):
    return DMXSystem(
        [make_chain(i) for i in range(n_apps)],
        SystemConfig(mode=mode),
        faults=faults,
        resilience=resilience,
    )


def test_breaker_converts_fallbacks_into_reroutes():
    baseline = build(faults=ALL_HANG).run_latency(requests_per_app=8)
    system = build(faults=ALL_HANG, resilience=HOLD_OPEN)
    resilient = system.run_latency(requests_per_app=8)

    base = baseline.recovery_summary()
    res = resilient.recovery_summary()
    assert base["fallbacks"] == 16 and base["rerouted"] == 0
    # The breaker needs min_observations failures to trip; everything
    # after routes around the sick unit without burning the deadline.
    assert 0 < res["fallbacks"] <= HOLD_OPEN.breaker.min_observations
    assert res["rerouted"] == 16 - res["fallbacks"]
    assert res["failures"] == 0  # reroute is recovery, not loss
    assert resilient.rerouted_count() == res["rerouted"]
    # Skipping the 20 ms deadline burn shows up directly in latency.
    assert resilient.mean_latency() < baseline.mean_latency()
    assert system.control.summary()["open"] == ["drx.s0"]


def test_rerouted_requests_skip_the_recovery_phase():
    system = build(faults=ALL_HANG, resilience=HOLD_OPEN)
    result = system.run_latency(requests_per_app=8)
    rerouted = [r for r in result.records if r.rerouted and not r.fell_back]
    assert rerouted
    # A proactive reroute never armed the watchdog: no deadline elapsed,
    # so no time is billed to the recovery phase.
    assert all("recovery" not in r.phases for r in rerouted)


def test_armed_control_plane_is_deterministic():
    def run():
        system = build(faults=ALL_HANG, resilience=HOLD_OPEN)
        result = system.run_latency(requests_per_app=6)
        records = [
            (r.app, r.request_id, r.latency, r.retries, r.fell_back,
             r.rerouted, r.failed)
            for r in result.records
        ]
        return records, system.control.summary()

    assert run() == run()


def test_fault_free_run_is_bit_identical_with_plane_armed():
    def latencies(resilience):
        system = build(resilience=resilience)
        result = system.run_latency(requests_per_app=4)
        return [(r.app, r.latency, r.phases) for r in result.records]

    # Sensing is passive: arming the control plane on a healthy system
    # must not perturb a single event.
    assert latencies(None) == latencies(HOLD_OPEN)


def test_force_open_drains_to_sibling_card():
    # 4 standalone apps → 2 cards (drx.s0, drx.s1). Draining s0 shifts
    # its apps onto s1 rather than degrading them to CPU.
    system = build(n_apps=4, resilience=HOLD_OPEN)
    system.control.breaker("drx.s0").force_open(cooldown_s=1e9)
    result = system.run_latency(requests_per_app=4)
    assert system.drx_devices["drx.s0"].busy_seconds == 0.0
    assert system.drx_devices["drx.s1"].busy_seconds > 0.0
    summary = result.recovery_summary()
    assert summary["rerouted"] == 8  # apps 0 and 1, 4 requests each
    assert summary["fallbacks"] == 0 and summary["failures"] == 0
    reroutes = [
        i for i in system.telemetry.instants if i.name == "breaker_reroute"
    ]
    assert len(reroutes) == 8
    assert all(i.attrs["to"] == "drx.s1" for i in reroutes)


def test_reroute_alternates_disabled_degrades_to_cpu():
    config = ResilienceConfig(
        seed=1,
        breaker=HOLD_OPEN.breaker,
        reroute_alternates=False,
    )
    system = build(n_apps=4, resilience=config)
    system.control.breaker("drx.s0").force_open(cooldown_s=1e9)
    result = system.run_latency(requests_per_app=4)
    assert system.drx_devices["drx.s0"].busy_seconds == 0.0
    assert system.drx_devices["drx.s1"].busy_seconds > 0.0  # own apps only
    assert result.rerouted_count() == 8
    reroutes = [
        i for i in system.telemetry.instants if i.name == "breaker_reroute"
    ]
    assert all(i.attrs["to"] == "cpu" for i in reroutes)


def test_breaker_telemetry_spans_and_instants():
    system = build(faults=ALL_HANG, resilience=HOLD_OPEN)
    system.run_latency(requests_per_app=8)
    telemetry = system.telemetry

    opens = [i for i in telemetry.instants if i.name == "breaker_open"]
    assert len(opens) == 1
    assert opens[0].actor == "drx.s0"
    assert opens[0].attrs["from"] == "closed"

    flagged = [s for s in telemetry.spans if s.attrs.get("breaker_open")]
    assert len(flagged) == system.control.reroutes
    assert all(s.attrs["rerouted_to"] == "cpu" for s in flagged)

    transitions = telemetry.metrics.counter(
        "breaker_transitions", target="drx.s0", to="open"
    )
    reroutes = telemetry.metrics.counter(
        "breaker_reroutes", target="drx.s0"
    )
    assert transitions.value == 1
    assert reroutes.value == system.control.reroutes
    # The health gauge the breaker acted on is in the registry too.
    health = telemetry.metrics.gauge("health_score", target="drx.s0")
    assert health.last() == 0.0


def test_half_open_probe_under_default_schedule():
    # Default cooldown (25 ms) is shorter than the run: the breaker
    # half-opens mid-run and sends exactly one probe at a time; with the
    # unit still sick, each probe fails and re-trips with backoff.
    config = ResilienceConfig(seed=1)
    system = build(faults=ALL_HANG, resilience=config)
    system.run_latency(requests_per_app=12)
    breaker = system.control.breaker("drx.s0")
    assert breaker.trips >= 2  # tripped, probed, re-tripped
    probes = [
        s for s in system.telemetry.spans if s.attrs.get("breaker_probe")
    ]
    assert probes  # probe attempts are attributed in the span tree
    states = [state for _, state in breaker.transitions]
    assert BreakerState.HALF_OPEN in states
    # Each re-trip came from a failed probe, never from a closed window.
    assert breaker.state in (BreakerState.OPEN, BreakerState.HALF_OPEN)


def test_breaker_events_survive_artifact_round_trip(tmp_path):
    from repro.telemetry import load_artifact, render_report, write_artifact

    system = build(faults=ALL_HANG, resilience=HOLD_OPEN)
    system.run_latency(requests_per_app=8)
    path = tmp_path / "run.jsonl"
    write_artifact(str(path), system.telemetry, meta={"seed": 42})
    artifact = load_artifact(str(path))

    # Span attributes thread through: rerouted motion attempts and the
    # open flag are visible to any artifact consumer.
    flagged = [s for s in artifact.spans if s.attrs.get("breaker_open")]
    assert len(flagged) == system.control.reroutes
    report = render_report(artifact, max_waterfalls=0)
    assert "control-plane events" in report
    assert "breaker_open" in report
    assert "breaker_reroute" in report


def test_quiet_run_report_has_no_control_plane_section(tmp_path):
    from repro.telemetry import load_artifact, render_report, write_artifact

    system = build(resilience=HOLD_OPEN)
    system.run_latency(requests_per_app=2)
    path = tmp_path / "quiet.jsonl"
    write_artifact(str(path), system.telemetry, meta={})
    report = render_report(load_artifact(str(path)), max_waterfalls=0)
    assert "control-plane events" not in report


@pytest.mark.parametrize("mode", [Mode.INTEGRATED, Mode.BUMP_IN_WIRE])
def test_modes_without_siblings_reroute_to_cpu(mode):
    system = build(mode=mode, faults=ALL_HANG, resilience=HOLD_OPEN)
    result = system.run_latency(requests_per_app=6)
    summary = result.recovery_summary()
    assert summary["rerouted"] > 0
    assert summary["failures"] == 0
    reroutes = [
        i for i in system.telemetry.instants if i.name == "breaker_reroute"
    ]
    assert all(i.attrs["to"] == "cpu" for i in reroutes)


def test_dead_breakers_are_reported_separately_from_open():
    """Failing-first for the open/dead conflation: a decommissioned
    (DEAD) target must not appear in ``open_targets()`` — open means
    recoverable (OPEN/HALF_OPEN), dead means gone until revived."""
    from repro.resilience.control import ControlPlane
    from repro.sim import Simulator

    plane = ControlPlane(Simulator(), None, ResilienceConfig(seed=1))
    plane.mark_dead("drx.s0")
    for _ in range(4):  # trip drx.s1 OPEN the honest way
        plane.record("drx.s1", ok=False)
    assert plane.breaker("drx.s0").state is BreakerState.DEAD
    assert plane.breaker("drx.s1").state is BreakerState.OPEN
    assert plane.open_targets() == ["drx.s1"]
    assert plane.dead_targets() == ["drx.s0"]
    summary = plane.summary()
    assert summary["open"] == ["drx.s1"]
    assert summary["dead"] == ["drx.s0"]
    # Revival moves the card back into the recoverable population.
    plane.revive("drx.s0", cooldown_s=0.0)
    assert plane.dead_targets() == []
    assert "drx.s0" in plane.open_targets()
