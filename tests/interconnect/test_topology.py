"""Unit tests for fabric topology routing and transfers."""

import pytest

from repro.interconnect import (
    MB,
    Fabric,
    LinkConfig,
    SWITCH_PORT_LATENCY_S,
)
from repro.sim import Simulator


def build_two_switch_fabric(sim):
    fabric = Fabric(sim)
    sw0 = fabric.add_switch("sw0")
    sw1 = fabric.add_switch("sw1")
    fabric.add_endpoint("a0", sw0)
    fabric.add_endpoint("a1", sw0)
    fabric.add_endpoint("b0", sw1)
    return fabric


def test_same_switch_path_avoids_upstream_link():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    links, hops = fabric.path("a0", "a1")
    names = [l.name for l in links]
    assert names == ["a0.up", "a1.up"]
    assert hops == 1  # through sw0 only


def test_cross_switch_path_traverses_root():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    links, hops = fabric.path("a0", "b0")
    names = [l.name for l in links]
    assert names == ["a0.up", "sw0.up", "sw1.up", "b0.up"]
    assert hops == 2  # sw0 and sw1; the root complex is not a switch hop


def test_endpoint_to_root_path():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    links, hops = fabric.path("a0", "root")
    assert [l.name for l in links] == ["a0.up", "sw0.up"]
    assert hops == 1


def test_path_to_self_is_empty():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    assert fabric.path("a0", "a0") == ([], 0)


def test_duplicate_node_name_rejected():
    sim = Simulator()
    fabric = Fabric(sim)
    sw = fabric.add_switch("sw0")
    fabric.add_endpoint("a0", sw)
    with pytest.raises(ValueError):
        fabric.add_endpoint("a0", sw)


def test_cannot_attach_under_endpoint():
    sim = Simulator()
    fabric = Fabric(sim)
    sw = fabric.add_switch("sw0")
    ep = fabric.add_endpoint("a0", sw)
    with pytest.raises(ValueError):
        fabric.add_endpoint("a1", ep)


def test_mux_pair_bypasses_switch():
    sim = Simulator()
    fabric = Fabric(sim)
    sw = fabric.add_switch("sw0")
    fabric.add_endpoint("accel", sw)
    fabric.add_endpoint("drx", sw)
    fabric.add_mux_pair("accel", "drx")
    links, hops = fabric.path("accel", "drx")
    assert len(links) == 1
    assert links[0].name == "accel<->drx.mux"
    assert hops == 0


def test_unloaded_latency_matches_simulated_uncontended_transfer():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    expected = fabric.unloaded_latency("a0", "b0", 4 * MB)
    elapsed = []

    def proc(sim):
        t = yield from fabric.transfer("a0", "b0", 4 * MB)
        elapsed.append(t)

    sim.spawn(proc(sim))
    sim.run()
    assert elapsed[0] == pytest.approx(expected)


def test_switch_latency_charged_per_hop():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    same = fabric.unloaded_latency("a0", "a1", 0)
    cross = fabric.unloaded_latency("a0", "b0", 0)
    # Cross-switch adds two extra links' propagation and one extra switch hop
    # (sw1; the root complex is not a switch).
    link_prop = fabric.link_config.propagation_latency_s
    assert cross - same == pytest.approx(2 * link_prop + SWITCH_PORT_LATENCY_S)


def test_shared_upstream_link_contends():
    """Two cross-switch transfers serialize on the shared sw0 upstream."""
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    done = []

    def mover(sim, src):
        yield from fabric.transfer(src, "b0", 16 * MB)
        done.append(sim.now)

    sim.spawn(mover(sim, "a0"))
    sim.spawn(mover(sim, "a1"))
    sim.run()
    solo = fabric.unloaded_latency("a0", "b0", 16 * MB)
    one_link = fabric.nodes["sw0"].uplink.transfer_time(16 * MB)
    # The second finisher queues behind the first on the shared sw0 upstream
    # link, so it is delayed by roughly one link-transfer time.
    assert done[0] == pytest.approx(solo, rel=0.01)
    assert done[1] >= done[0] + 0.8 * one_link


def test_local_p2p_does_not_contend_with_cross_traffic_on_upstream():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)
    upstream = fabric.nodes["sw0"].uplink
    assert upstream.bytes_moved == 0

    def local(sim):
        yield from fabric.transfer("a0", "a1", 8 * MB)

    sim.spawn(local(sim))
    sim.run()
    assert upstream.bytes_moved == 0


def test_total_bytes_moved_counts_every_link_crossing():
    sim = Simulator()
    fabric = build_two_switch_fabric(sim)

    def mover(sim):
        yield from fabric.transfer("a0", "b0", MB)

    sim.spawn(mover(sim))
    sim.run()
    # 4 links crossed, 1 MB each.
    assert fabric.total_bytes_moved() == 4 * MB
