"""Unit tests for the PCIe link model."""

import pytest

from repro.interconnect import GB, MB, LinkConfig, PCIeGen, PCIeLink
from repro.sim import Simulator


def test_gen3_per_lane_bandwidth_close_to_standard():
    # Gen3 is 8 GT/s with 128b/130b: ~0.985 GB/s per lane raw.
    assert PCIeGen.GEN3.raw_gbps_per_lane == pytest.approx(0.985, rel=0.01)


def test_generation_bandwidth_doubles_each_gen():
    g3 = PCIeGen.GEN3.raw_gbps_per_lane
    g4 = PCIeGen.GEN4.raw_gbps_per_lane
    g5 = PCIeGen.GEN5.raw_gbps_per_lane
    assert g4 == pytest.approx(2 * g3)
    assert g5 == pytest.approx(4 * g3)


def test_x8_gen3_effective_bandwidth_in_expected_range():
    config = LinkConfig(gen=PCIeGen.GEN3, lanes=8)
    bw = config.bandwidth_bytes_per_s
    # Raw x8 Gen3 is ~7.9 GB/s; with 0.85 protocol efficiency ~6.7 GB/s.
    assert 6.0e9 < bw < 7.2e9


def test_lane_count_validation():
    with pytest.raises(ValueError):
        LinkConfig(lanes=3)


def test_protocol_efficiency_validation():
    with pytest.raises(ValueError):
        LinkConfig(protocol_efficiency=0.0)
    with pytest.raises(ValueError):
        LinkConfig(protocol_efficiency=1.5)


def test_transfer_time_scales_linearly_with_size():
    sim = Simulator()
    link = PCIeLink(sim, LinkConfig(propagation_latency_s=0.0))
    t1 = link.transfer_time(1 * MB)
    t2 = link.transfer_time(2 * MB)
    assert t2 == pytest.approx(2 * t1)


def test_transfer_time_includes_propagation_latency():
    sim = Simulator()
    link = PCIeLink(sim, LinkConfig(propagation_latency_s=1e-6))
    assert link.transfer_time(0) == pytest.approx(1e-6)


def test_negative_transfer_size_rejected():
    sim = Simulator()
    link = PCIeLink(sim, LinkConfig())
    with pytest.raises(ValueError):
        link.transfer_time(-1)


def test_concurrent_transfers_queue_on_the_link():
    sim = Simulator()
    link = PCIeLink(sim, LinkConfig(propagation_latency_s=0.0))
    ends = []

    def mover(sim):
        yield from link.transfer(8 * MB)
        ends.append(sim.now)

    sim.spawn(mover(sim))
    sim.spawn(mover(sim))
    sim.run()
    single = link.transfer_time(8 * MB)
    assert ends[0] == pytest.approx(single)
    assert ends[1] == pytest.approx(2 * single)
    assert link.bytes_moved == 16 * MB


def test_wider_link_is_proportionally_faster():
    sim = Simulator()
    narrow = PCIeLink(sim, LinkConfig(lanes=4, propagation_latency_s=0.0))
    wide = PCIeLink(sim, LinkConfig(lanes=16, propagation_latency_s=0.0))
    assert narrow.transfer_time(GB) == pytest.approx(4 * wide.transfer_time(GB))


def test_gen5_transfer_four_times_faster_than_gen3():
    sim = Simulator()
    g3 = PCIeLink(sim, LinkConfig(gen=PCIeGen.GEN3, propagation_latency_s=0.0))
    g5 = PCIeLink(sim, LinkConfig(gen=PCIeGen.GEN5, propagation_latency_s=0.0))
    assert g3.transfer_time(GB) == pytest.approx(4 * g5.transfer_time(GB))
