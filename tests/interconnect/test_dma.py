"""Unit tests for the DMA engine software-overhead model."""

import pytest

from repro.interconnect import DMACosts, DMAEngine, Fabric, MB
from repro.sim import Simulator


def make_fabric(sim):
    fabric = Fabric(sim)
    sw = fabric.add_switch("sw0")
    fabric.add_endpoint("a", sw)
    fabric.add_endpoint("b", sw)
    return fabric


def test_dma_charges_setup_and_completion():
    sim = Simulator()
    fabric = make_fabric(sim)
    costs = DMACosts(setup_s=5e-6, completion_interrupt_s=3e-6)
    dma = DMAEngine(sim, fabric, costs)
    elapsed = []

    def proc(sim):
        t = yield from dma.transfer("a", "b", MB)
        elapsed.append(t)

    sim.spawn(proc(sim))
    sim.run()
    fabric_only = fabric.unloaded_latency("a", "b", MB)
    assert elapsed[0] == pytest.approx(fabric_only + 5e-6 + 3e-6)


def test_dma_overheads_can_be_waived_for_chained_descriptors():
    sim = Simulator()
    fabric = make_fabric(sim)
    costs = DMACosts(setup_s=5e-6, completion_interrupt_s=3e-6)
    dma = DMAEngine(sim, fabric, costs)
    elapsed = []

    def proc(sim):
        t = yield from dma.transfer(
            "a", "b", MB, charge_setup=False, charge_completion=False
        )
        elapsed.append(t)

    sim.spawn(proc(sim))
    sim.run()
    assert elapsed[0] == pytest.approx(fabric.unloaded_latency("a", "b", MB))


def test_dma_statistics_accumulate():
    sim = Simulator()
    fabric = make_fabric(sim)
    dma = DMAEngine(sim, fabric)

    def proc(sim):
        yield from dma.transfer("a", "b", MB)
        yield from dma.transfer("b", "a", 2 * MB)

    sim.spawn(proc(sim))
    sim.run()
    assert dma.transfers_completed == 2
    assert dma.bytes_transferred == 3 * MB


def test_negative_dma_size_rejected():
    sim = Simulator()
    fabric = make_fabric(sim)
    dma = DMAEngine(sim, fabric)

    def proc(sim):
        yield from dma.transfer("a", "b", -1)

    sim.spawn(proc(sim))
    with pytest.raises(ValueError):
        sim.run()


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        DMACosts(setup_s=-1e-6)


def test_unloaded_latency_estimate_matches_simulation():
    sim = Simulator()
    fabric = make_fabric(sim)
    dma = DMAEngine(sim, fabric)
    got = []

    def proc(sim):
        t = yield from dma.transfer("a", "b", 4 * MB)
        got.append(t)

    sim.spawn(proc(sim))
    sim.run()
    assert got[0] == pytest.approx(dma.unloaded_latency("a", "b", 4 * MB))
