"""System-level fault injection: the ISSUE acceptance scenario and friends.

The headline property: a seeded run that fails 10% of DMA transfers and
hangs 5% of DRX restructure calls still completes every request with no
unhandled SimulationError, records retries/fallbacks per request, and is
fully deterministic given the seed.
"""

import pytest

from repro.accelerators.base import AcceleratorSpec
from repro.core import (
    AppChain,
    DMXSystem,
    KernelStage,
    Mode,
    MotionStage,
    SystemConfig,
)
from repro.faults import FaultPlan, FaultPolicy, RetryPolicy
from repro.profiles import WorkProfile

MB = 1024 * 1024
SPEC = AcceleratorSpec(name="accel", domain="d", speedup_vs_cpu=6.0)

ACCEPTANCE_PLAN = FaultPlan(
    seed=42,
    dma=FaultPolicy(fail_p=0.10),
    drx=FaultPolicy(hang_p=0.05),
    drx_deadline_s=30e-3,
)


def make_chain(i=0, in_mb=12, out_mb=6):
    profile = WorkProfile(
        name="motion", bytes_in=2 * in_mb * MB, bytes_out=out_mb * MB,
        elements=in_mb * MB // 4, ops_per_element=20.0, gather_fraction=0.3,
    )
    return AppChain(
        name=f"app{i}",
        stages=[
            KernelStage("k1", SPEC, cpu_time_s=5e-3, accel_time_s=1e-3,
                        output_bytes=in_mb * MB),
            MotionStage("m", profile, input_bytes=in_mb * MB,
                        output_bytes=out_mb * MB, cpu_threads=3),
            KernelStage("k2", SPEC, cpu_time_s=4e-3, accel_time_s=8e-4,
                        output_bytes=MB),
        ],
    )


def build(mode, n_apps=3, faults=None, **config_kwargs):
    return DMXSystem(
        [make_chain(i) for i in range(n_apps)],
        SystemConfig(mode=mode, **config_kwargs),
        faults=faults,
    )


def run_summary(mode, faults, requests_per_app=5):
    system = build(mode, faults=faults)
    result = system.run_latency(requests_per_app=requests_per_app)
    records = [
        (r.app, r.request_id, r.latency, r.retries, r.fell_back, r.failed)
        for r in result.records
    ]
    return records, result, system


@pytest.mark.parametrize("mode", list(Mode))
def test_acceptance_all_requests_complete_under_faults(mode):
    records, result, system = run_summary(mode, ACCEPTANCE_PLAN)
    assert len(records) == 15  # 3 apps x 5 requests, none lost
    assert all(latency > 0 for _, _, latency, *_ in records)
    summary = result.recovery_summary()
    assert summary["requests"] == 15
    assert summary["failures"] == 0  # recovery absorbed every fault


@pytest.mark.parametrize("mode", list(Mode))
def test_acceptance_is_deterministic_given_seed(mode):
    first, *_ = run_summary(mode, ACCEPTANCE_PLAN)
    second, *_ = run_summary(mode, ACCEPTANCE_PLAN)
    assert first == second


def test_acceptance_records_retries_and_fallbacks():
    records, result, system = run_summary(Mode.STANDALONE, ACCEPTANCE_PLAN)
    # Seed 42 injects DMA failures and DRX hangs on this workload; the
    # injector's counters corroborate the per-request bookkeeping.
    assert system.injector.injected_count() > 0
    assert result.total_retries() > 0 or result.fallback_count() > 0
    kinds = system.fault_trace.fault_counts()
    assert any(k.startswith("inject:") for k in kinds)
    # Every retry/fallback noted in the trace maps back to a request.
    for record in system.fault_trace.faults(kind="fallback"):
        assert record.request_id >= 0


def test_no_faults_runs_identically_to_seed_behavior():
    def latencies(faults):
        system = build(Mode.BUMP_IN_WIRE, faults=faults)
        result = system.run_latency(requests_per_app=3)
        return [(r.app, r.latency, r.phases) for r in result.records]

    assert latencies(None) == latencies(None)
    baseline = latencies(None)
    # All-zero probabilities with faults=None is the seed-identical path;
    # records carry the new fields at their defaults.
    system = build(Mode.BUMP_IN_WIRE)
    result = system.run_latency(requests_per_app=3)
    assert [(r.app, r.latency, r.phases) for r in result.records] == baseline
    assert all(
        r.retries == 0 and not r.fell_back and not r.failed
        for r in result.records
    )


def test_forced_drx_hang_falls_back_to_cpu_restructuring():
    plan = FaultPlan(
        seed=1,
        drx=FaultPolicy(hang_p=1.0),
        drx_deadline_s=5e-3,
    )
    records, result, system = run_summary(Mode.STANDALONE, plan,
                                          requests_per_app=2)
    assert len(records) == 6
    # Every DRX leg hangs, so every request degrades to the CPU path.
    assert all(fell_back for *_, fell_back, _ in records)
    assert result.fallback_count() == 6
    assert result.failure_count() == 0
    # The failed leg's elapsed time is charged to the recovery phase.
    assert all("recovery" in r.phases for r in result.records)


def test_fallback_latency_lands_between_healthy_drx_and_multi_axl():
    healthy = build(Mode.STANDALONE).run_latency(2).mean_latency()
    cpu_only = build(Mode.MULTI_AXL).run_latency(2).mean_latency()
    plan = FaultPlan(seed=1, drx=FaultPolicy(hang_p=1.0), drx_deadline_s=5e-3)
    degraded = build(Mode.STANDALONE, faults=plan).run_latency(2).mean_latency()
    # Degraded mode pays the deadline + CPU restructuring: slower than a
    # healthy DRX, at least as slow as never trying the DRX at all.
    assert degraded > healthy
    assert degraded > cpu_only


def test_exhausted_retries_mark_request_failed_but_keep_record():
    plan = FaultPlan(
        seed=3,
        dma=FaultPolicy(fail_p=1.0),
        dma_retry=RetryPolicy(max_attempts=2),
        dma_timeout_s=10e-3,
    )
    records, result, _ = run_summary(Mode.MULTI_AXL, plan, requests_per_app=2)
    assert len(records) == 6  # giving up still yields a complete record
    assert result.failure_count() == 6
    assert all(failed for *_, failed in records)


def test_recovery_summary_shape():
    _, result, _ = run_summary(Mode.STANDALONE, ACCEPTANCE_PLAN)
    summary = result.recovery_summary()
    assert set(summary) == {
        "requests", "retries", "fallbacks", "rerouted", "rescued",
        "failures",
    }
    assert summary["retries"] == result.total_retries()
    assert summary["fallbacks"] == result.fallback_count()
    # No control plane armed: nothing can be proactively rerouted.
    assert summary["rerouted"] == result.rerouted_count() == 0
