"""with_timeout / retry combinators and the recovering DMA + driver paths."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPolicy,
    InjectedFault,
    RetryExhausted,
    RetryPolicy,
    retry,
    with_timeout,
)
from repro.interconnect import DMACosts, DMAEngine, Fabric
from repro.sim import Resource, Simulator, WaitTimeout


def drive(sim, gen):
    """Spawn ``gen``, run the sim, and return (value, exception).

    ``outcome["at"]`` records the sim time the generator finished —
    ``sim.now`` after :meth:`run` is later, because loser timeout events
    from ``AnyOf`` races stay in the heap until the run drains.
    """
    outcome = drive.outcome = {}

    def wrapper(sim):
        try:
            outcome["value"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - tests inspect it
            outcome["error"] = exc
        outcome["at"] = sim.now

    sim.spawn(wrapper(sim))
    sim.run()
    return outcome.get("value"), outcome.get("error")


# -- with_timeout -------------------------------------------------------------


def test_with_timeout_returns_value_when_op_beats_deadline():
    sim = Simulator()

    def op(sim):
        yield sim.timeout(1.0)
        return "fast"

    value, error = drive(sim, with_timeout(sim, op(sim), 5.0))
    assert (value, error) == ("fast", None)
    assert drive.outcome["at"] == 1.0


def test_with_timeout_raises_and_interrupts_slow_op():
    sim = Simulator()
    finished = []

    def op(sim):
        yield sim.timeout(10.0)
        finished.append("late")

    value, error = drive(sim, with_timeout(sim, op(sim), 2.0, what="slow-op"))
    assert isinstance(error, WaitTimeout)
    assert "slow-op" in str(error)
    # The deadline fires at 2 s; the interrupted op never reaches 10 s.
    assert drive.outcome["at"] == 2.0
    assert finished == []


def test_with_timeout_deadline_releases_held_resources():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def op(sim):
        yield from res.use(10.0)

    _, error = drive(sim, with_timeout(sim, op(sim), 2.0))
    assert isinstance(error, WaitTimeout)
    # The interrupted child's finally block gave the slot back.
    assert res.in_use == 0 and res.queue_length == 0


def test_with_timeout_propagates_op_exception():
    sim = Simulator()

    def op(sim):
        yield sim.timeout(0.5)
        raise InjectedFault(site="dma")

    _, error = drive(sim, with_timeout(sim, op(sim), 5.0))
    assert isinstance(error, InjectedFault)


def test_with_timeout_none_runs_inline():
    sim = Simulator()

    def op(sim):
        yield sim.timeout(3.0)
        return 42

    value, _ = drive(sim, with_timeout(sim, op(sim), None))
    assert value == 42 and sim.now == 3.0


# -- retry --------------------------------------------------------------------


def test_retry_policy_backoff_is_bounded_exponential():
    policy = RetryPolicy(max_attempts=5, backoff_base_s=1e-6,
                         backoff_multiplier=2.0, backoff_cap_s=3e-6)
    assert [policy.backoff(n) for n in range(4)] == pytest.approx(
        [1e-6, 2e-6, 3e-6, 3e-6]  # capped
    )
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)


def test_retry_succeeds_after_transient_failures():
    sim = Simulator()
    attempts = []

    def make_op():
        def op(sim):
            attempts.append(sim.now)
            yield sim.timeout(1e-6)
            if len(attempts) < 3:
                raise InjectedFault(site="dma")
            return "recovered"
        return op(sim)

    policy = RetryPolicy(max_attempts=4, backoff_base_s=10e-6,
                         backoff_multiplier=2.0, backoff_cap_s=1e-3)
    value, error = drive(sim, retry(sim, make_op, policy))
    assert error is None
    assert value == ("recovered", 2)  # succeeded on the third attempt
    # Deterministic backoff: attempt starts at 0, then +op+10us, +op+20us.
    assert attempts == pytest.approx([0.0, 11e-6, 32e-6])


def test_retry_exhaustion_preserves_last_cause():
    sim = Simulator()

    def make_op():
        def op(sim):
            yield sim.timeout(1e-6)
            raise InjectedFault(site="dma", actor="eng")
        return op(sim)

    _, error = drive(sim, retry(sim, make_op,
                                RetryPolicy(max_attempts=3), what="dma-op"))
    assert isinstance(error, RetryExhausted)
    assert error.attempts == 3
    assert isinstance(error.last, InjectedFault)
    assert "dma-op" in str(error)


def test_retry_does_not_catch_non_retryable_exceptions():
    sim = Simulator()

    def make_op():
        def op(sim):
            yield sim.timeout(1e-6)
            raise ValueError("programming error")
        return op(sim)

    _, error = drive(sim, retry(sim, make_op, RetryPolicy(max_attempts=5)))
    assert isinstance(error, ValueError)


def test_retry_reports_each_failed_attempt():
    sim = Simulator()
    observed = []

    def make_op():
        def op(sim):
            yield sim.timeout(10.0)  # always hits the 1 s deadline
        return op(sim)

    _, error = drive(sim, retry(
        sim, make_op, RetryPolicy(max_attempts=2, backoff_base_s=0.1),
        timeout_s=1.0,
        on_attempt_failed=lambda a, e, w: observed.append((a, type(e), w)),
    ))
    assert isinstance(error, RetryExhausted)
    assert observed == [(0, WaitTimeout, True), (1, WaitTimeout, False)]


# -- DMAEngine recovery -------------------------------------------------------


def two_node_fabric(sim):
    fabric = Fabric(sim)
    switch = fabric.add_switch("sw0")
    fabric.add_endpoint("a", switch)
    fabric.add_endpoint("b", switch)
    return fabric


def test_dma_engine_retries_injected_failures():
    sim = Simulator()
    fabric = two_node_fabric(sim)
    injector = FaultInjector(
        sim, seed=11, policies={"dma": FaultPolicy(fail_p=0.5)},
    )
    engine = DMAEngine(sim, fabric, DMACosts(), injector=injector,
                       timeout_s=1.0, retry_policy=RetryPolicy(max_attempts=8))

    def workload(sim):
        for _ in range(20):
            yield from engine.transfer("a", "b", 4096)

    sim.spawn(workload(sim))
    sim.run()
    assert engine.transfers_completed == 20
    assert engine.failed_transfers == 0
    assert engine.retries == injector.injected_count("dma") > 0


def test_dma_engine_hang_reclaimed_by_watchdog_without_leaking_links():
    sim = Simulator()
    fabric = two_node_fabric(sim)
    injector = FaultInjector(
        sim, seed=0, policies={"dma": FaultPolicy(hang_p=1.0)},
    )
    engine = DMAEngine(sim, fabric, DMACosts(), injector=injector,
                       timeout_s=1e-3, retry_policy=RetryPolicy(max_attempts=2))
    errors = []

    def workload(sim):
        try:
            yield from engine.transfer("a", "b", 4096)
        except RetryExhausted as exc:
            errors.append(exc)

    sim.spawn(workload(sim))
    sim.run()
    assert len(errors) == 1
    assert engine.failed_transfers == 1
    # Hung attempts never acquired fabric links, so nothing is stuck.
    for link in fabric.path("a", "b")[0]:
        assert link.queue_length == 0
        assert link._server.in_use == 0


def test_dma_recovery_plumbing_costs_no_simulated_time_when_quiet():
    def elapsed(engine_kwargs):
        sim = Simulator()
        fabric = two_node_fabric(sim)
        if "make_injector" in engine_kwargs:
            engine_kwargs = dict(engine_kwargs)
            engine_kwargs["injector"] = engine_kwargs.pop("make_injector")(sim)
        engine = DMAEngine(sim, fabric, DMACosts(), **engine_kwargs)
        times = []

        def workload(sim):
            t = yield from engine.transfer("a", "b", 1 << 20)
            times.append(t)

        sim.spawn(workload(sim))
        sim.run()
        return times[0]

    plain = elapsed({})
    # An armed watchdog + an injector with no probability mass perturb
    # nothing: the transfer takes exactly as long as the plain engine's.
    guarded = elapsed({
        "make_injector": lambda sim: FaultInjector(sim, seed=0),
        "timeout_s": 10.0,
        "retry_policy": RetryPolicy(max_attempts=3),
    })
    assert guarded == plain
