"""FaultInjector: seeded determinism, policy validation, the three kinds."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPolicy, InjectedFault
from repro.sim import Interrupt, Simulator, Trace


def run_draws(seed, policy, n=200):
    sim = Simulator()
    injector = FaultInjector(sim, seed=seed, policies={"dma": policy})
    return [injector.draw("dma") for _ in range(n)]


def test_same_seed_same_fault_sequence():
    policy = FaultPolicy(fail_p=0.1, hang_p=0.05, delay_p=0.2)
    assert run_draws(7, policy) == run_draws(7, policy)


def test_different_seed_different_fault_sequence():
    policy = FaultPolicy(fail_p=0.1, hang_p=0.05, delay_p=0.2)
    assert run_draws(7, policy) != run_draws(8, policy)


def test_draw_precedence_matches_probability_mass():
    draws = run_draws(3, FaultPolicy(fail_p=0.1, hang_p=0.1, delay_p=0.1),
                      n=3000)
    kinds = [kind for d in draws if d is not None for kind, _ in [d]]
    for kind in FaultKind:
        frequency = kinds.count(kind) / len(draws)
        assert frequency == pytest.approx(0.1, abs=0.03)


def test_inactive_site_consumes_no_randomness():
    sim = Simulator()
    injector = FaultInjector(sim, seed=1, policies={"dma": FaultPolicy()})
    state = injector._rng.getstate()
    assert injector.draw("dma") is None
    assert injector.draw("unknown-site") is None
    assert injector._rng.getstate() == state


def test_policy_validation():
    with pytest.raises(ValueError, match="fail_p"):
        FaultPolicy(fail_p=1.5)
    with pytest.raises(ValueError, match="sum"):
        FaultPolicy(fail_p=0.6, hang_p=0.6)
    with pytest.raises(ValueError, match="non-negative"):
        FaultPolicy(delay_s=-1.0)
    assert not FaultPolicy().active
    assert FaultPolicy(delay_p=0.1).active


def test_fail_raises_injected_fault_after_latency():
    sim = Simulator()
    injector = FaultInjector(
        sim, seed=0,
        policies={"dma": FaultPolicy(fail_p=1.0, fail_latency_s=2e-6)},
    )
    seen = []

    def op(sim):
        yield sim.timeout(1.0)
        return "never"

    def proc(sim):
        try:
            yield from injector.guard("dma", op(sim), actor="eng0")
        except InjectedFault as exc:
            seen.append((sim.now, exc.site, exc.actor))

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [(2e-6, "dma", "eng0")]
    assert injector.injected_count("dma", FaultKind.FAIL) == 1


def test_delay_runs_op_after_extra_latency():
    sim = Simulator()
    injector = FaultInjector(
        sim, seed=0, policies={"dma": FaultPolicy(delay_p=1.0, delay_s=1.0)},
    )
    finished = []

    def op(sim):
        yield sim.timeout(1.0)
        return "done"

    def proc(sim):
        value = yield from injector.guard("dma", op(sim))
        finished.append((value, sim.now))

    sim.spawn(proc(sim))
    sim.run()
    (value, when), = finished
    assert value == "done"
    # delay is uniform in [0.5x, 1.5x] of delay_s, plus the op's own 1 s.
    assert 1.5 <= when <= 2.5
    assert injector.injected_count(kind=FaultKind.DELAY) == 1


def test_hang_blocks_until_interrupted_and_op_never_starts():
    sim = Simulator()
    injector = FaultInjector(
        sim, seed=0, policies={"drx": FaultPolicy(hang_p=1.0)},
    )
    log = []

    def op(sim):
        log.append("op-started")
        yield sim.timeout(1.0)

    def proc(sim):
        try:
            yield from injector.guard("drx", op(sim))
        except Interrupt:
            log.append(("reaped", sim.now))

    victim = sim.spawn(proc(sim))
    sim.schedule(5.0, lambda: victim.interrupt("watchdog"))
    sim.run()
    # HANG means the guarded op never even begins; only the watchdog
    # interrupt reclaims the process.
    assert log == [("reaped", 5.0)]
    assert injector.injected_count("drx", FaultKind.HANG) == 1


def test_guard_closes_unstarted_op_generator():
    sim = Simulator()
    injector = FaultInjector(
        sim, seed=0, policies={"dma": FaultPolicy(fail_p=1.0)},
    )
    cleanup = []

    def op(sim):
        try:
            yield sim.timeout(1.0)
        finally:
            cleanup.append("closed")

    gen = op(sim)

    def proc(sim):
        try:
            yield from injector.guard("dma", gen)
        except InjectedFault:
            pass

    sim.spawn(proc(sim))
    sim.run()
    # The op generator is close()d, not leaked half-constructed.
    with pytest.raises(StopIteration):
        next(gen)


def test_trace_records_injections():
    sim = Simulator()
    trace = Trace()
    injector = FaultInjector(
        sim, seed=0,
        policies={"dma": FaultPolicy(fail_p=1.0)},
        trace=trace,
    )

    def op(sim):
        yield sim.timeout(1.0)

    def proc(sim):
        try:
            yield from injector.guard("dma", op(sim), actor="eng0",
                                      request_id=42)
        except InjectedFault:
            pass

    sim.spawn(proc(sim))
    sim.run()
    record, = trace.faults(kind="inject:fail")
    assert record.site == "dma"
    assert record.actor == "eng0"
    assert record.request_id == 42
    assert trace.fault_counts() == {"inject:fail": 1}
