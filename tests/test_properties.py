"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators import (
    AES128,
    Regex,
    aes_gcm_decrypt,
    aes_gcm_encrypt,
    fft_radix2,
    hash_join,
    lz77_compress,
    lz77_decompress,
)
from repro.drx import (
    DRXCompiler,
    DRXConfig,
    DRXMemory,
    FunctionalDRX,
    assemble,
    disassemble,
    normalize_kernel,
    transpose_kernel,
)
from repro.profiles import WorkProfile, scale_profile
from repro.restructuring import (
    BytesToRecords,
    HashPartition,
    Quantize,
    Dequantize,
    RecordsToBytes,
    RowsToColumnar,
    fnv1a32,
)
from repro.sim import Simulator, Resource


# -- crypto ------------------------------------------------------------------


@given(st.binary(min_size=0, max_size=500), st.binary(min_size=16, max_size=16))
@settings(max_examples=25, deadline=None)
def test_gcm_roundtrip_any_plaintext(plaintext, key):
    iv = b"nonce-12byte"
    ciphertext, tag = aes_gcm_encrypt(key, iv, plaintext)
    assert aes_gcm_decrypt(key, iv, ciphertext, tag) == plaintext


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
@settings(max_examples=25, deadline=None)
def test_aes_block_is_a_permutation(key, block):
    """Distinct keys map the same block to (almost surely) distinct outputs,
    and encryption output length is preserved."""
    blocks = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
    out = AES128(key).encrypt_blocks(blocks)
    assert out.shape == (1, 16)
    # Determinism.
    np.testing.assert_array_equal(out, AES128(key).encrypt_blocks(blocks))


# -- compression ----------------------------------------------------------------


@given(st.binary(min_size=0, max_size=4000))
@settings(max_examples=40, deadline=None)
def test_lz77_roundtrip_arbitrary_bytes(data):
    assert lz77_decompress(lz77_compress(data)) == data


@given(st.binary(min_size=1, max_size=64), st.integers(2, 200))
@settings(max_examples=25, deadline=None)
def test_lz77_repetition_compresses(chunk, repeats):
    data = chunk * repeats
    compressed = lz77_compress(data)
    assert lz77_decompress(compressed) == data
    if len(data) > 1000:
        assert len(compressed) < len(data)


# -- FFT ------------------------------------------------------------------------


@given(
    st.integers(3, 9),  # log2 of the transform length
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_fft_parseval_energy_conservation(log_n, seed):
    n = 1 << log_n
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    spectrum = fft_radix2(x)
    time_energy = np.sum(np.abs(x) ** 2)
    freq_energy = np.sum(np.abs(spectrum) ** 2) / n
    assert freq_energy == pytest.approx(time_energy, rel=1e-9)


# -- restructuring invariants -------------------------------------------------------


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               min_size=0, max_size=400),
       st.integers(8, 64))
@settings(max_examples=40, deadline=None)
def test_records_roundtrip_preserves_content(text, record_len):
    # Normalize: the codec treats newline as separator and drops blanks.
    lines = [ln for ln in text.split("\n") if ln]
    data = np.frombuffer("\n".join(lines).encode(), dtype=np.uint8).copy()
    if data.size == 0:
        return
    records = BytesToRecords(record_len).apply(data)
    restored = RecordsToBytes().apply(records).tobytes().decode()
    # Wrapping may split long lines; content survives minus separators.
    assert restored.replace("\n", "") == "".join(lines).rstrip("\x00")


@given(st.integers(1, 400), st.integers(2, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_columnar_pivot_preserves_multiset(n_rows, n_cols, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(-(2**31), 2**31 - 1, (n_rows, n_cols),
                          dtype=np.int64).astype("<i4")
    rows = values.view(np.uint8).reshape(n_rows, n_cols * 4)
    columnar = RowsToColumnar(n_cols).apply(rows)
    np.testing.assert_array_equal(columnar, values.T)


@given(st.integers(1, 300), st.integers(1, 32), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_hash_partition_is_a_permutation(n_rows, n_partitions, seed):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1000, n_rows).astype(np.int32)
    payload = np.arange(n_rows, dtype=np.int32)
    out = HashPartition(0, n_partitions).apply(np.stack([keys, payload]))
    # No row created or lost; partition ids nondecreasing.
    assert sorted(out[1].tolist()) == list(range(n_rows))
    parts = fnv1a32(out[0]) % np.uint32(n_partitions)
    assert np.all(np.diff(parts.astype(np.int64)) >= 0)


@given(st.lists(st.floats(-3.0, 3.0, allow_nan=False), min_size=1,
                max_size=200))
@settings(max_examples=30, deadline=None)
def test_quantize_dequantize_bounded_error(values):
    data = np.asarray(values, dtype=np.float32)
    scale = 3.0 / 127
    restored = Dequantize(scale).apply(Quantize(scale).apply(data))
    assert np.max(np.abs(restored - np.clip(data, -128 * scale, 127 * scale))
                  ) <= scale / 2 + 1e-6


# -- hash join -----------------------------------------------------------------------


@given(st.integers(0, 50), st.integers(0, 80), st.integers(1, 20),
       st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_hash_join_matches_set_semantics(n_build, n_probe, key_range, seed):
    rng = np.random.default_rng(seed)
    build = np.stack([
        rng.integers(0, key_range, max(n_build, 1)),
        rng.integers(0, 100, max(n_build, 1)),
    ]).astype(np.int32)
    probe = np.stack([
        rng.integers(0, key_range, max(n_probe, 1)),
        np.arange(max(n_probe, 1)),
    ]).astype(np.int32)
    result = hash_join(build, probe)
    expected_pairs = sum(
        int(np.sum(build[0] == key)) for key in probe[0]
    )
    assert result.shape[1] == expected_pairs


# -- regex engine vs stdlib ---------------------------------------------------------


@given(st.text(alphabet="ab-19 .", min_size=0, max_size=60))
@settings(max_examples=50, deadline=None)
def test_regex_ssn_matches_stdlib(text):
    import re as stdlib_re

    pattern = r"\d{3}-\d{2}-\d{4}"
    ours = Regex(pattern).finditer(text)
    theirs = [m.span() for m in stdlib_re.finditer(pattern, text)]
    assert ours == theirs


# -- DRX compiler -------------------------------------------------------------------


@given(st.integers(1, 5000),
       st.floats(-100, 100, allow_nan=False),
       st.floats(0.25, 8.0, allow_nan=False),
       st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_compiled_normalize_matches_numpy_any_size(n, offset, scale, seed):
    rng = np.random.default_rng(seed)
    data = (rng.random(n) * 50).astype(np.float32)
    program = DRXCompiler().compile(normalize_kernel(n, offset, scale))
    mem = DRXMemory()
    mem.bind("in", data)
    mem.allocate("out", n, np.float32)
    FunctionalDRX(mem).execute(program)
    np.testing.assert_allclose(
        mem.read("out"), (data - np.float32(offset)) / np.float32(scale),
        rtol=1e-5, atol=1e-5,
    )


@given(st.integers(1, 40), st.integers(1, 40), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_compiled_transpose_matches_numpy_any_shape(rows, cols, seed):
    rng = np.random.default_rng(seed)
    data = rng.random((rows, cols)).astype(np.float32)
    program = DRXCompiler().compile(transpose_kernel(rows, cols))
    mem = DRXMemory()
    mem.bind("in", data)
    mem.allocate("out", rows * cols, np.float32)
    FunctionalDRX(mem).execute(program)
    np.testing.assert_array_equal(
        mem.read("out").reshape(cols, rows), data.T
    )


@given(st.integers(1, 64), st.integers(1, 1000))
@settings(max_examples=20, deadline=None)
def test_assembler_roundtrip_generated_programs(count, tile):
    text = f"""
    SYNC.START
    LOOP {count}
      LD v0, in[0,+{tile}], {tile}
      VMULI v1, v0, 2.0
      ST out[0,+{tile}], v1, {tile}
    ENDLOOP
    SYNC.END
    """
    program = assemble(text)
    assert assemble(disassemble(program)).instructions == program.instructions


# -- profiles ------------------------------------------------------------------------


@given(st.integers(0, 10**9), st.integers(0, 10**9), st.integers(0, 10**7),
       st.floats(0, 1000, allow_nan=False),
       st.floats(0.1, 100.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_scale_profile_linear_in_volume(bytes_in, bytes_out, elements, ops,
                                        factor):
    profile = WorkProfile("p", bytes_in, bytes_out, elements, ops)
    scaled = scale_profile(profile, factor)
    assert scaled.bytes_in == int(round(bytes_in * factor))
    assert scaled.elements == int(round(elements * factor))
    assert scaled.ops_per_element == profile.ops_per_element


# -- DES engine ---------------------------------------------------------------------


@given(st.lists(st.floats(0.001, 10.0, allow_nan=False), min_size=1,
                max_size=20))
@settings(max_examples=30, deadline=None)
def test_des_resource_conserves_work(durations):
    """Total busy time on a capacity-1 resource equals the sum of holds,
    and the makespan equals it too (perfect serialization)."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def job(sim, duration):
        yield from resource.use(duration)

    for duration in durations:
        sim.spawn(job(sim, duration))
    sim.run()
    assert sim.now == pytest.approx(sum(durations), rel=1e-9)
    assert resource.busy_time() == pytest.approx(sum(durations), rel=1e-9)


@given(st.integers(1, 8),
       st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=1,
                max_size=24))
@settings(max_examples=30, deadline=None)
def test_des_parallel_capacity_lower_bounds(capacity, durations):
    """Makespan with capacity C is at least total/C and at least max."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)

    def job(sim, duration):
        yield from resource.use(duration)

    for duration in durations:
        sim.spawn(job(sim, duration))
    sim.run()
    assert sim.now >= max(durations) - 1e-12
    assert sim.now >= sum(durations) / capacity - 1e-9
