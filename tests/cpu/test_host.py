"""Tests for the HostCPU DES device."""

import pytest

from repro.cpu import HostCPU, XEON_8260L
from repro.profiles import WorkProfile
from repro.sim import Simulator

MB = 1024 * 1024


def profile():
    return WorkProfile(
        name="restructure",
        bytes_in=8 * MB,
        bytes_out=4 * MB,
        elements=2_000_000,
        ops_per_element=10.0,
    )


def test_parallel_time_faster_than_serial():
    sim = Simulator()
    cpu = HostCPU(sim)
    p = profile()
    assert cpu.parallel_time(p, 8) < cpu.serial_time(p)


def test_parallel_time_has_diminishing_returns():
    sim = Simulator()
    cpu = HostCPU(sim)
    p = profile()
    t8 = cpu.parallel_time(p, 8)
    t16 = cpu.parallel_time(p, 16)
    # Still faster, but not 2x faster.
    assert t16 < t8
    assert t8 / t16 < 2.0


def test_parallel_time_clamps_to_max_threads():
    sim = Simulator()
    cpu = HostCPU(sim, max_threads=4)
    p = profile()
    assert cpu.parallel_time(p, 100) == pytest.approx(cpu.parallel_time(p, 4))


def test_restructure_single_job_latency_matches_parallel_time():
    sim = Simulator()
    cpu = HostCPU(sim)
    p = profile()
    results = []

    def job(sim):
        t = yield from cpu.restructure(p, threads=8)
        results.append(t)

    sim.spawn(job(sim))
    sim.run()
    assert results[0] == pytest.approx(cpu.parallel_time(p, 8))


def test_concurrent_jobs_contend_for_cores():
    """Many jobs, each wanting all 16 cores: latency grows with load."""
    sim = Simulator()
    cpu = HostCPU(sim)
    p = profile()
    latencies = []

    def job(sim):
        t = yield from cpu.restructure(p, threads=16)
        latencies.append(t)

    for _ in range(4):
        sim.spawn(job(sim))
    sim.run()
    solo = cpu.parallel_time(p, 16)
    # Four full-width jobs over one core pool serialize roughly 4x.
    assert max(latencies) > 3.0 * solo
    assert cpu.restructure_jobs == 4


def test_single_thread_restructure_uses_serial_time():
    sim = Simulator()
    cpu = HostCPU(sim)
    p = profile()
    out = []

    def job(sim):
        t = yield from cpu.restructure(p, threads=1)
        out.append(t)

    sim.spawn(job(sim))
    sim.run()
    assert out[0] == pytest.approx(cpu.serial_time(p))


def test_run_kernel_occupies_cores_for_duration():
    sim = Simulator()
    cpu = HostCPU(sim)
    out = []

    def job(sim):
        t = yield from cpu.run_kernel(0.5, threads=2)
        out.append(t)

    sim.spawn(job(sim))
    sim.run()
    assert out[0] == pytest.approx(0.5)
    assert cpu.busy_seconds == pytest.approx(1.0)  # 2 cores x 0.5 s


def test_run_kernel_rejects_negative_duration():
    sim = Simulator()
    cpu = HostCPU(sim)

    def job(sim):
        yield from cpu.run_kernel(-1.0)

    sim.spawn(job(sim))
    with pytest.raises(ValueError):
        sim.run()


def test_interrupt_service_preempts_queue_order():
    """An interrupt arriving while bulk work is queued is served first."""
    sim = Simulator()
    cpu = HostCPU(sim, spec=XEON_8260L)
    order = []

    def hog(sim):
        # Fill all 16 cores for a long time, then queue one more bulk job.
        yield from cpu.run_kernel(1.0, threads=16)

    def bulk(sim):
        yield sim.timeout(0.1)
        yield from cpu.run_kernel(0.5, threads=1)
        order.append(("bulk", sim.now))

    def irq(sim):
        yield sim.timeout(0.2)
        yield from cpu.service_interrupt(1e-6)
        order.append(("irq", sim.now))

    sim.spawn(hog(sim))
    sim.spawn(bulk(sim))
    sim.spawn(irq(sim))
    sim.run()
    assert order[0][0] == "irq"


def test_utilization_reflects_busy_cores():
    sim = Simulator()
    cpu = HostCPU(sim)

    def job(sim):
        yield from cpu.run_kernel(1.0, threads=8)
        yield sim.timeout(1.0)

    sim.spawn(job(sim))
    sim.run()
    # 8 of 16 cores busy for half the elapsed 2 s => 25%.
    assert cpu.utilization() == pytest.approx(0.25, rel=0.01)


def test_negative_parallel_overhead_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        HostCPU(sim, parallel_overhead=-0.1)
