"""Tests for the cache model and top-down attribution (Fig. 5 ranges)."""

import pytest

from repro.cpu import CacheModel, TopDownModel, XEON_8260L
from repro.profiles import WorkProfile

MB = 1024 * 1024


def streaming_profile(**overrides):
    """A representative restructuring op: 12 MB streamed, moderate compute."""
    base = dict(
        name="mel_scale",
        bytes_in=8 * MB,
        bytes_out=4 * MB,
        elements=2_000_000,
        ops_per_element=12.0,
        element_size=4,
        branch_fraction=0.04,
        mispredict_rate=0.03,
        vectorizable_fraction=1.0,
    )
    base.update(overrides)
    return WorkProfile(**base)


@pytest.fixture
def cache_model():
    return CacheModel(XEON_8260L)


@pytest.fixture
def topdown():
    return TopDownModel(XEON_8260L)


def test_streaming_op_l1d_mpki_in_paper_range(cache_model):
    # Paper: 50-215 L1D MPKI across restructuring ops.
    low_intensity = streaming_profile(ops_per_element=2.0, element_size=1,
                                      elements=8_000_000)
    high_intensity = streaming_profile(ops_per_element=12.0)
    for profile in (low_intensity, high_intensity):
        mpki = cache_model.behaviour(profile).l1d_mpki
        assert 20 < mpki < 250, f"{profile.name}: {mpki}"


def test_streaming_op_l2_mpki_below_l1d(cache_model):
    b = cache_model.behaviour(streaming_profile())
    assert b.l2_mpki < b.l1d_mpki
    # Paper: 25-109 L2 MPKI.
    assert 10 < b.l2_mpki < 120


def test_l1i_mpki_is_small(cache_model):
    # Paper: average 2.3 L1I MPKI, far below CloudSuite's 7.8 — the
    # instruction working set fits in L1I.
    b = cache_model.behaviour(streaming_profile())
    assert b.l1i_mpki < 7.8


def test_small_working_set_has_no_data_misses(cache_model):
    tiny = streaming_profile(bytes_in=8 * 1024, bytes_out=4 * 1024,
                             elements=2048)
    b = cache_model.behaviour(tiny)
    assert b.l1d_mpki == 0.0
    assert b.l2_mpki == 0.0


def test_gathers_increase_misses(cache_model):
    seq = streaming_profile()
    gathered = streaming_profile(gather_fraction=0.5)
    assert (
        cache_model.behaviour(gathered).l1d_mpki
        > cache_model.behaviour(seq).l1d_mpki
    )


def test_llc_captures_datasets_smaller_than_llc(cache_model):
    p = streaming_profile()  # 12 MB < 36 MB LLC
    assert cache_model.llc_misses(p) == 0.0
    big = streaming_profile(bytes_in=60 * MB, bytes_out=20 * MB,
                            elements=15_000_000)
    assert cache_model.llc_misses(big) > 0.0


def test_prefetch_coverage_bounds():
    with pytest.raises(ValueError):
        CacheModel(XEON_8260L, prefetch_coverage=1.5)


def test_topdown_fractions_sum_to_one(topdown):
    b = topdown.analyze(streaming_profile())
    total = (
        b.retiring
        + b.front_end_bound
        + b.bad_speculation
        + b.backend_core_bound
        + b.backend_memory_bound
    )
    assert total == pytest.approx(1.0)


def test_topdown_backend_bound_in_paper_range(topdown):
    # Paper: back-end bound 53%-77.6% across restructuring ops.
    for profile in (
        streaming_profile(ops_per_element=4.0),
        streaming_profile(ops_per_element=12.0),
        streaming_profile(ops_per_element=24.0),
    ):
        b = topdown.analyze(profile)
        assert 0.45 <= b.back_end_bound <= 0.85, (
            f"{profile.ops_per_element}: {b.back_end_bound}"
        )


def test_topdown_memory_dominates_core_for_low_intensity_streaming(topdown):
    # At low arithmetic intensity the cache misses dominate; at high
    # intensity the vector ports do. (Paper: memory-bound ~2x core-bound
    # on average across restructuring ops.)
    low = topdown.analyze(streaming_profile(ops_per_element=2.0))
    high = topdown.analyze(streaming_profile(ops_per_element=40.0))
    assert low.backend_memory_bound > low.backend_core_bound
    assert high.backend_core_bound > high.backend_memory_bound


def test_topdown_bad_speculation_small_but_grows_with_branches(topdown):
    calm = topdown.analyze(streaming_profile(branch_fraction=0.02))
    branchy = topdown.analyze(
        streaming_profile(branch_fraction=0.12, mispredict_rate=0.05)
    )
    assert calm.bad_speculation < branchy.bad_speculation
    # Paper: at most 12.5% bad speculation.
    assert branchy.bad_speculation <= 0.15


def test_topdown_frontend_small(topdown):
    b = topdown.analyze(streaming_profile())
    # Paper: at most 14% front-end bound.
    assert b.front_end_bound <= 0.14


def test_runtime_positive_and_scales_with_volume(topdown):
    small = streaming_profile()
    big = streaming_profile(
        bytes_in=16 * MB, bytes_out=8 * MB, elements=4_000_000
    )
    t_small = topdown.runtime_seconds(small)
    t_big = topdown.runtime_seconds(big)
    assert 0 < t_small < t_big
    assert t_big == pytest.approx(2 * t_small, rel=0.05)


def test_topdown_parameter_validation():
    with pytest.raises(ValueError):
        TopDownModel(XEON_8260L, mlp_overlap=1.0)
    with pytest.raises(ValueError):
        TopDownModel(XEON_8260L, core_pressure=-0.1)
