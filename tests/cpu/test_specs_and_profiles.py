"""Tests for CPU specs and shared work profiles."""

import pytest

from repro.cpu import XEON_8260L, CacheLevel, CPUSpec
from repro.profiles import WorkProfile, scale_profile


def make_profile(**overrides):
    base = dict(
        name="test-op",
        bytes_in=8 * 1024 * 1024,
        bytes_out=4 * 1024 * 1024,
        elements=2_000_000,
        ops_per_element=10.0,
    )
    base.update(overrides)
    return WorkProfile(**base)


def test_default_spec_matches_testbed():
    assert XEON_8260L.cores == 16
    assert XEON_8260L.frequency_hz == pytest.approx(2.4e9)
    assert XEON_8260L.vector_width_bits == 256


def test_vector_lanes_by_element_size():
    assert XEON_8260L.vector_lanes(4) == 8  # fp32 in AVX-256
    assert XEON_8260L.vector_lanes(1) == 32
    assert XEON_8260L.vector_lanes(8) == 4


def test_vector_lanes_rejects_bad_element_size():
    with pytest.raises(ValueError):
        XEON_8260L.vector_lanes(0)


def test_cache_level_validation():
    with pytest.raises(ValueError):
        CacheLevel("bad", 0, 64, 4)
    with pytest.raises(ValueError):
        CacheLevel("bad", 1024, 64, -1)


def test_cpu_spec_validation():
    with pytest.raises(ValueError):
        CPUSpec(
            name="bad",
            cores=0,
            frequency_hz=1e9,
            vector_width_bits=256,
            vector_ports=2,
            l1i=XEON_8260L.l1i,
            l1d=XEON_8260L.l1d,
            l2=XEON_8260L.l2,
            llc=XEON_8260L.llc,
            dram_latency_cycles=200,
            core_stream_bandwidth=1e9,
            socket_stream_bandwidth=1e10,
        )


def test_work_profile_totals():
    p = make_profile()
    assert p.total_ops == pytest.approx(20_000_000)
    assert p.total_bytes == 12 * 1024 * 1024
    assert p.arithmetic_intensity == pytest.approx(
        20_000_000 / (12 * 1024 * 1024)
    )


def test_work_profile_validation():
    with pytest.raises(ValueError):
        make_profile(bytes_in=-1)
    with pytest.raises(ValueError):
        make_profile(branch_fraction=1.5)
    with pytest.raises(ValueError):
        make_profile(element_size=0)
    with pytest.raises(ValueError):
        make_profile(ops_per_element=-1.0)


def test_scale_profile_scales_volume_only():
    p = make_profile(branch_fraction=0.07)
    doubled = scale_profile(p, 2.0)
    assert doubled.bytes_in == 2 * p.bytes_in
    assert doubled.elements == 2 * p.elements
    assert doubled.branch_fraction == p.branch_fraction


def test_scale_profile_rejects_negative():
    with pytest.raises(ValueError):
        scale_profile(make_profile(), -1.0)
